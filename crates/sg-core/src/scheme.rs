//! The open compression-scheme layer: a [`CompressionScheme`] trait, the
//! concrete scheme zoo, parameter bags, and a name-based [`SchemeRegistry`].
//!
//! Slim Graph's central idea is *programmable* compression: kernels are
//! small programs that can be combined freely. The original harness
//! hard-coded every scheme in a closed enum; this module replaces it with
//! an object-safe trait plus a registry, so new schemes can be added (and
//! chained into [`crate::Pipeline`]s) without touching dispatch code.

use crate::engine::CompressionResult;
use crate::kernel::{EdgeKernel, VertexKernel};
use crate::schemes::{
    cut_sparsify, forest_indices, remove_low_degree, spanner, spectral_sparsify,
    summarize_to_graph, triangle_collapse, triangle_reduce, uniform_sample, CutSparsifyKernel,
    Discipline, EdgeChoice, LowDegreeKernel, SpectralKernel, SummarizationConfig, TrConfig,
    UniformKernel, UpsilonVariant,
};
use sg_graph::CsrGraph;
use std::collections::BTreeMap;

/// How a scheme runs on the sharded/distributed backend (sg-dist).
///
/// The paper's distributed design (§7.3) partitions vertices across ranks
/// and exchanges the shared `considered` flags over RMA; which protocol a
/// scheme needs depends on its kernel class. [`CompressionScheme::dist_plan`]
/// reports the class so `sg_dist::distributed_compress` can pick the right
/// executor without downcasting.
pub enum DistPlan {
    /// A pure edge kernel: every rank decides its own edge range
    /// independently (no shared state, single superstep).
    EdgeKernel(Box<dyn EdgeKernel>),
    /// The Triangle Reduction family: ranks own vertex/edge partitions and,
    /// for the Edge-Once disciplines, reconcile the shared `considered`
    /// flags through deterministic superstep rounds.
    Triangle(TrConfig),
    /// A pure vertex kernel: every rank decides its own vertex range
    /// independently; removals are merged in rank order.
    Vertex(Box<dyn VertexKernel>),
}

/// A lossy compression scheme: one stage-1 kernel family plus its
/// parameters. Object-safe so schemes can live in registries and pipelines.
pub trait CompressionScheme: Send + Sync {
    /// Registry name (`"uniform"`, `"spanner"`, `"tr-eo"`, …).
    fn name(&self) -> &str;

    /// The scheme's parameters as `(key, rendered value)` pairs.
    fn params(&self) -> Vec<(&'static str, String)> {
        Vec::new()
    }

    /// Applies the scheme to `g` with deterministic seed `seed`.
    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult;

    /// Human-readable label: the name plus its parameters.
    fn label(&self) -> String {
        let params = self.params();
        if params.is_empty() {
            self.name().to_string()
        } else {
            let rendered: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{} ({})", self.name(), rendered.join(", "))
        }
    }

    /// For schemes expressible as a pure edge kernel: builds the kernel for
    /// `g`, enabling the simulated distributed backend (`sg-dist`) to shard
    /// the scheme. `None` (the default) means shared-memory only.
    fn edge_kernel(&self, g: &CsrGraph) -> Option<Box<dyn EdgeKernel>> {
        let _ = g;
        None
    }

    /// The scheme's sharded-execution plan, if it can run distributed.
    /// Defaults to wrapping [`CompressionScheme::edge_kernel`]; schemes with
    /// triangle- or vertex-class kernels override this to opt into the
    /// shared-state executors. `None` means shared-memory only
    /// (contraction/summarization classes that rewrite the vertex set
    /// globally).
    fn dist_plan(&self, g: &CsrGraph) -> Option<DistPlan> {
        self.edge_kernel(g).map(DistPlan::EdgeKernel)
    }
}

/// A string key/value parameter bag with typed accessors, used by
/// [`SchemeRegistry`] factories and the CLI's `--scheme` parser. Ordered
/// and comparable so parameterized specs ([`crate::PipelineSpec`]) can be
/// deduplicated and sorted deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SchemeParams {
    values: BTreeMap<String, String>,
}

impl SchemeParams {
    /// An empty bag (factories fall back to their defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bag from `(key, value)` pairs.
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        let mut params = Self::new();
        for (k, v) in pairs {
            params.set(k, v);
        }
        params
    }

    /// Sets one parameter (overwrites).
    pub fn set(&mut self, key: &str, value: &str) -> &mut Self {
        self.values.insert(key.to_string(), value.to_string());
        self
    }

    /// Parses a `key=value` assignment into the bag; returns the key.
    pub fn parse_assignment(&mut self, assignment: &str) -> Result<String, String> {
        match assignment.split_once('=') {
            Some((k, v)) if !k.is_empty() && !v.is_empty() => {
                let key = k.trim().to_string();
                self.set(&key, v.trim());
                Ok(key)
            }
            _ => Err(format!("expected key=value, got '{assignment}'")),
        }
    }

    /// This bag with `overrides` layered on top.
    pub fn merged_with(&self, overrides: &SchemeParams) -> Self {
        let mut merged = self.clone();
        for (k, v) in &overrides.values {
            merged.set(k, v);
        }
        merged
    }

    /// Raw string value.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// All `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Whether the bag holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `f64` value with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        self.parse_with(key, default)
    }

    /// `u32` value with a default.
    pub fn get_u32(&self, key: &str, default: u32) -> Result<u32, String> {
        self.parse_with(key, default)
    }

    /// `bool` value with a default.
    pub fn get_bool(&self, key: &str, default: bool) -> Result<bool, String> {
        self.parse_with(key, default)
    }

    fn parse_with<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("parameter {key}: cannot parse '{raw}'")),
        }
    }
}

/// Random uniform edge sampling: remove each edge with probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    /// Removal probability.
    pub p: f64,
}

impl CompressionScheme for Uniform {
    fn name(&self) -> &str {
        "uniform"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("p", self.p.to_string())]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        uniform_sample(g, self.p, seed)
    }

    fn edge_kernel(&self, _g: &CsrGraph) -> Option<Box<dyn EdgeKernel>> {
        Some(Box::new(UniformKernel::new(self.p)))
    }
}

/// Spectral sparsification with user parameter `p` and Υ variant.
#[derive(Clone, Copy, Debug)]
pub struct Spectral {
    /// Sparsification parameter.
    pub p: f64,
    /// How Υ is derived.
    pub variant: UpsilonVariant,
    /// Whether survivors are reweighted by `1/p_e`.
    pub reweight: bool,
}

impl CompressionScheme for Spectral {
    fn name(&self) -> &str {
        "spectral"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        let variant = match self.variant {
            UpsilonVariant::LogN => "logn",
            UpsilonVariant::AvgDegree => "avgdeg",
        };
        vec![
            ("p", self.p.to_string()),
            ("variant", variant.to_string()),
            ("reweight", self.reweight.to_string()),
        ]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        spectral_sparsify(g, self.p, self.variant, self.reweight, seed)
    }

    fn edge_kernel(&self, g: &CsrGraph) -> Option<Box<dyn EdgeKernel>> {
        Some(Box::new(SpectralKernel::for_graph(g, self.p, self.variant, self.reweight)))
    }
}

/// The Triangle Reduction family (plain, Edge-Once, Count-Triangles,
/// max-weight), named after its configuration.
#[derive(Clone, Copy, Debug)]
pub struct TriangleReduction {
    /// Full TR configuration.
    pub cfg: TrConfig,
}

impl CompressionScheme for TriangleReduction {
    fn name(&self) -> &str {
        match (self.cfg.discipline, self.cfg.choice) {
            (Discipline::Plain, _) => "tr",
            (Discipline::EdgeOnce, EdgeChoice::FewestTriangles) => "tr-ct",
            (Discipline::EdgeOnce, EdgeChoice::MaxWeight) => "tr-mw",
            (Discipline::EdgeOnce, EdgeChoice::Random) => "tr-eo",
        }
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("p", self.cfg.p.to_string()), ("x", self.cfg.x.to_string())]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        triangle_reduce(g, self.cfg, seed)
    }

    /// Paper-style label (`EO-0.5-1-TR`, …).
    fn label(&self) -> String {
        self.cfg.label()
    }

    fn dist_plan(&self, _g: &CsrGraph) -> Option<DistPlan> {
        Some(DistPlan::Triangle(self.cfg))
    }
}

/// Triangle p-Reduction by Collapse: contract sampled triangles.
#[derive(Clone, Copy, Debug)]
pub struct TriangleCollapse {
    /// Probability of collapsing a triangle.
    pub p: f64,
}

impl CompressionScheme for TriangleCollapse {
    fn name(&self) -> &str {
        "collapse"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("p", self.p.to_string())]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        triangle_collapse(g, self.p, seed)
    }
}

/// Degree ≤ 1 vertex removal.
#[derive(Clone, Copy, Debug, Default)]
pub struct LowDegree;

impl CompressionScheme for LowDegree {
    fn name(&self) -> &str {
        "lowdeg"
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        remove_low_degree(g, seed)
    }

    fn dist_plan(&self, _g: &CsrGraph) -> Option<DistPlan> {
        Some(DistPlan::Vertex(Box::new(LowDegreeKernel::default())))
    }
}

/// O(k)-spanner via low-diameter decomposition.
#[derive(Clone, Copy, Debug)]
pub struct Spanner {
    /// Stretch parameter.
    pub k: f64,
}

impl CompressionScheme for Spanner {
    fn name(&self) -> &str {
        "spanner"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("k", self.k.to_string())]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        spanner(g, self.k, seed)
    }
}

/// Lossy ϵ-summarization; the summary is reconstructed into a graph so the
/// scheme composes with stage 2 (and with later pipeline stages).
#[derive(Clone, Copy, Debug)]
pub struct Summarization {
    /// Per-edge error budget.
    pub epsilon: f64,
}

impl CompressionScheme for Summarization {
    fn name(&self) -> &str {
        "summary"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("epsilon", self.epsilon.to_string())]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        let cfg = SummarizationConfig { epsilon: self.epsilon, max_iterations: 8, seed };
        summarize_to_graph(g, cfg).1
    }
}

/// Nagamochi–Ibaraki cut sparsifier: preserves all cuts of value ≤ `k`.
#[derive(Clone, Copy, Debug)]
pub struct CutSparsifier {
    /// Connectivity threshold.
    pub k: u32,
}

impl CompressionScheme for CutSparsifier {
    fn name(&self) -> &str {
        "cut"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("k", self.k.to_string())]
    }

    fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        cut_sparsify(g, self.k, seed)
    }

    fn edge_kernel(&self, g: &CsrGraph) -> Option<Box<dyn EdgeKernel>> {
        Some(Box::new(CutSparsifyKernel { indices: forest_indices(g), k: self.k }))
    }
}

/// Builds one scheme instance from a parameter bag.
pub type SchemeFactory =
    Box<dyn Fn(&SchemeParams) -> Result<Box<dyn CompressionScheme>, String> + Send + Sync>;

struct RegisteredScheme {
    factory: SchemeFactory,
    /// Parameter keys the factory reads; per-stage overrides outside this
    /// set are rejected by [`SchemeRegistry::parse_pipeline`].
    param_keys: &'static [&'static str],
}

/// Name → factory table for every known compression scheme.
///
/// [`SchemeRegistry::with_defaults`] registers the full zoo; extensions
/// register additional names with [`SchemeRegistry::register`]. Names are
/// stored in a `BTreeMap`, so [`SchemeRegistry::names`] iterates in a
/// stable order.
pub struct SchemeRegistry {
    schemes: BTreeMap<String, RegisteredScheme>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { schemes: BTreeMap::new() }
    }

    /// The full built-in scheme zoo, keyed by the CLI names.
    ///
    /// Parameters read by the factories (all optional): `p` (sampling /
    /// reduction probability, default 0.5), `k` (spanner stretch or cut
    /// threshold, default 8), `epsilon` (summarization error, default 0.1),
    /// `variant` (`logn` | `avgdeg`), `reweight` (bool), `x` (TR edges
    /// removed per triangle, 1 or 2).
    pub fn with_defaults() -> Self {
        let mut registry = Self::new();
        registry.register("uniform", &["p"], |p| Ok(Box::new(Uniform { p: p.get_f64("p", 0.5)? })));
        registry.register("spectral", &["p", "variant", "reweight"], |p| {
            let variant = match p.get_str("variant").unwrap_or("logn") {
                "logn" => UpsilonVariant::LogN,
                "avgdeg" => UpsilonVariant::AvgDegree,
                other => return Err(format!("unknown spectral variant '{other}'")),
            };
            Ok(Box::new(Spectral {
                p: p.get_f64("p", 0.5)?,
                variant,
                reweight: p.get_bool("reweight", false)?,
            }))
        });
        registry.register("tr", &["p", "x"], |p| {
            Ok(Box::new(TriangleReduction {
                cfg: tr_config(p, Discipline::Plain, EdgeChoice::Random)?,
            }))
        });
        registry.register("tr-eo", &["p", "x"], |p| {
            Ok(Box::new(TriangleReduction {
                cfg: tr_config(p, Discipline::EdgeOnce, EdgeChoice::Random)?,
            }))
        });
        registry.register("tr-ct", &["p", "x"], |p| {
            Ok(Box::new(TriangleReduction {
                cfg: tr_config(p, Discipline::EdgeOnce, EdgeChoice::FewestTriangles)?,
            }))
        });
        registry.register("tr-mw", &["p", "x"], |p| {
            Ok(Box::new(TriangleReduction {
                cfg: tr_config(p, Discipline::EdgeOnce, EdgeChoice::MaxWeight)?,
            }))
        });
        registry.register("collapse", &["p"], |p| {
            Ok(Box::new(TriangleCollapse { p: p.get_f64("p", 0.5)? }))
        });
        registry.register("lowdeg", &[], |_| Ok(Box::new(LowDegree)));
        registry.register("spanner", &["k"], |p| Ok(Box::new(Spanner { k: p.get_f64("k", 8.0)? })));
        registry.register("summary", &["epsilon"], |p| {
            Ok(Box::new(Summarization { epsilon: p.get_f64("epsilon", 0.1)? }))
        });
        registry.register("cut", &["k"], |p| {
            // k is accepted as a float (truncated) so one shared --k flag
            // serves both spanner and cut stages.
            Ok(Box::new(CutSparsifier { k: p.get_f64("k", 8.0)?.max(1.0) as u32 }))
        });
        registry
    }

    /// Registers (or replaces) a scheme factory under `name`. `param_keys`
    /// lists the parameter names the factory reads; pipeline-spec overrides
    /// for other keys are rejected.
    pub fn register(
        &mut self,
        name: &str,
        param_keys: &'static [&'static str],
        factory: impl Fn(&SchemeParams) -> Result<Box<dyn CompressionScheme>, String>
            + Send
            + Sync
            + 'static,
    ) {
        self.schemes
            .insert(name.to_string(), RegisteredScheme { factory: Box::new(factory), param_keys });
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.schemes.contains_key(name)
    }

    /// All registered names, in stable (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.schemes.keys().map(String::as_str)
    }

    /// The parameter keys read by the scheme registered as `name`.
    pub fn param_keys(&self, name: &str) -> Option<&'static [&'static str]> {
        self.schemes.get(name).map(|s| s.param_keys)
    }

    /// Instantiates the scheme registered as `name` with `params`. Keys the
    /// scheme does not read are ignored, so one shared parameter bag can
    /// serve a whole pipeline.
    pub fn create(
        &self,
        name: &str,
        params: &SchemeParams,
    ) -> Result<Box<dyn CompressionScheme>, String> {
        match self.schemes.get(name) {
            Some(scheme) => (scheme.factory)(params),
            None => {
                let known: Vec<&str> = self.names().collect();
                Err(format!("unknown scheme '{name}' (known: {})", known.join(", ")))
            }
        }
    }

    /// Parses a pipeline spec: comma-separated stages, each `name` or
    /// `name:key=value[:key=value…]`, with per-stage assignments layered
    /// over `base` parameters. Example:
    /// `"spanner:k=4,lowdeg,uniform:p=0.3"`. Per-stage keys are validated
    /// against the scheme's declared parameters so typos fail loudly
    /// instead of silently running with defaults. The parsed intermediate
    /// form is [`crate::PipelineSpec`]; use it directly when the chain is
    /// constructed programmatically (as `sg-tune` does).
    pub fn parse_pipeline(
        &self,
        spec: &str,
        base: &SchemeParams,
    ) -> Result<crate::Pipeline, String> {
        crate::PipelineSpec::parse(spec)?.build_with_base(self, base)
    }
}

impl Default for SchemeRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

fn tr_config(
    params: &SchemeParams,
    discipline: Discipline,
    choice: EdgeChoice,
) -> Result<TrConfig, String> {
    let p = params.get_f64("p", 0.5)?;
    let x = params.get_u32("x", 1)? as usize;
    if x != 1 && x != 2 {
        return Err(format!("TR parameter x must be 1 or 2, got {x}"));
    }
    Ok(TrConfig { p, x, discipline, choice })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn registry_covers_the_zoo_and_every_scheme_applies() {
        let registry = SchemeRegistry::with_defaults();
        for required in [
            "uniform", "spectral", "tr", "tr-eo", "tr-ct", "tr-mw", "collapse", "lowdeg",
            "spanner", "summary", "cut",
        ] {
            assert!(registry.contains(required), "missing scheme '{required}'");
        }
        let g = generators::planted_triangles(&generators::erdos_renyi(300, 900, 1), 300, 2);
        let params = SchemeParams::from_pairs(&[("p", "0.4"), ("k", "4"), ("epsilon", "0.05")]);
        for name in registry.names() {
            let scheme = registry.create(name, &params).expect("factory succeeds");
            assert_eq!(scheme.name(), name, "name round-trips through the registry");
            let r = scheme.apply(&g, 7);
            assert!(
                r.graph.num_edges() <= g.num_edges() + g.num_edges() / 10,
                "{} inflated edges",
                scheme.label()
            );
            assert!(!scheme.label().is_empty());
        }
    }

    #[test]
    fn labels_render_name_and_params() {
        assert_eq!(Uniform { p: 0.2 }.label(), "uniform (p=0.2)");
        assert_eq!(Spanner { k: 16.0 }.label(), "spanner (k=16)");
        assert_eq!(LowDegree.label(), "lowdeg");
        // TR keeps the paper's naming.
        assert_eq!(TriangleReduction { cfg: TrConfig::edge_once_1(0.8) }.label(), "EO-0.8-1-TR");
    }

    #[test]
    fn unknown_names_and_bad_params_error() {
        let registry = SchemeRegistry::with_defaults();
        let err = registry.create("nope", &SchemeParams::new()).err().expect("unknown name errors");
        assert!(err.contains("unknown scheme"), "{err}");
        let bad = SchemeParams::from_pairs(&[("p", "abc")]);
        assert!(registry.create("uniform", &bad).is_err());
        let bad_x = SchemeParams::from_pairs(&[("x", "3")]);
        assert!(registry.create("tr", &bad_x).is_err());
    }

    #[test]
    fn pipeline_specs_reject_unknown_stage_parameters() {
        let registry = SchemeRegistry::with_defaults();
        let base = SchemeParams::new();
        // Typo'd key (capital K) must fail loudly, not run with defaults.
        let err = registry.parse_pipeline("spanner:K=4", &base).err().expect("typo rejected");
        assert!(err.contains("does not accept parameter 'K'"), "{err}");
        assert!(err.contains("accepts: k"), "{err}");
        let err = registry.parse_pipeline("lowdeg:p=0.5", &base).err().expect("rejected");
        assert!(err.contains("accepts: none"), "{err}");
        // Valid per-stage keys still parse.
        assert_eq!(
            registry.parse_pipeline("spanner:k=4,uniform:p=0.3", &base).expect("parses").len(),
            2
        );
        // Shared base params may carry keys some stages ignore.
        let shared = SchemeParams::from_pairs(&[("p", "0.5"), ("k", "4")]);
        assert!(registry.parse_pipeline("spanner,lowdeg,uniform", &shared).is_ok());
    }

    #[test]
    fn cut_sparsifier_defaults_and_float_k_match_previous_cli_behavior() {
        let registry = SchemeRegistry::with_defaults();
        let cut = registry.create("cut", &SchemeParams::new()).expect("default");
        assert_eq!(cut.label(), "cut (k=8)", "default threshold is 8, as documented");
        let half = registry
            .create("cut", &SchemeParams::from_pairs(&[("k", "2.5")]))
            .expect("float k truncates");
        assert_eq!(half.label(), "cut (k=2)");
        let floor =
            registry.create("cut", &SchemeParams::from_pairs(&[("k", "0")])).expect("clamped to 1");
        assert_eq!(floor.label(), "cut (k=1)");
    }

    #[test]
    fn factories_match_direct_construction() {
        let g = generators::erdos_renyi(200, 800, 3);
        let registry = SchemeRegistry::with_defaults();
        let via_registry = registry
            .create("uniform", &SchemeParams::from_pairs(&[("p", "0.3")]))
            .expect("known scheme");
        let direct = Uniform { p: 0.3 };
        assert_eq!(
            via_registry.apply(&g, 11).graph.edge_slice(),
            direct.apply(&g, 11).graph.edge_slice()
        );
    }

    #[test]
    fn custom_registration_is_resolvable() {
        let mut registry = SchemeRegistry::new();
        registry.register("noop", &[], |_| Ok(Box::new(Uniform { p: 0.0 })));
        assert!(registry.contains("noop"));
        let g = generators::cycle(10);
        let r = registry.create("noop", &SchemeParams::new()).expect("registered").apply(&g, 0);
        assert_eq!(r.graph.num_edges(), g.num_edges());
    }
}
