//! Named graph handles — the load-once registry behind the session API.
//!
//! A serving process loads a graph **once** and answers many pipeline
//! requests against it. [`GraphCatalog`] is that registry: it maps names
//! to [`GraphHandle`]s (ref-counted [`CsrGraph`]s tagged with a process-
//! unique [`GraphId`]), loading each name at most once. Handles are cheap
//! to clone and keep the graph alive even after the catalog entry is
//! evicted, so in-flight requests never observe a graph disappearing
//! under them; `.sgr` entries opened through the zero-copy
//! [`sg_store::MmapGraph`] path equally keep the file mapping alive via
//! the sections' anchor.
//!
//! The [`GraphId`] is the cache-key ingredient: two different graphs can
//! never share an id, so [`crate::cache::StageCache`] entries can never be
//! served across graphs even if a name is evicted and re-registered.

use sg_graph::{io, CsrGraph};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-unique identifier of one catalog registration.
///
/// Ids are minted from one **process-global** counter (not per-catalog)
/// and never reused: re-registering a name after an eviction — or
/// registering in a *different* catalog — always mints a fresh id. This
/// is what keeps stage-cache keys unambiguous even when one
/// [`crate::cache::StageCache`] is shared across sessions with different
/// catalogs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u64);

/// Process-global id source (see [`GraphId`]).
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A graph storage format the catalog (and the CLI) can read and write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// Whitespace edge list, `u v [w]` per line.
    Text,
    /// Compact binary edge list.
    Bin,
    /// Zero-copy binary CSR container (loaded through a read-only mmap).
    Sgr,
}

impl GraphFormat {
    /// Resolves a format from an explicit name (`text`/`txt`, `bin`,
    /// `sgr`), falling back to the file extension, defaulting to text.
    pub fn resolve(path: &str, explicit: Option<&str>) -> Result<GraphFormat, String> {
        match explicit {
            Some("text" | "txt") => Ok(GraphFormat::Text),
            Some("bin") => Ok(GraphFormat::Bin),
            Some("sgr") => Ok(GraphFormat::Sgr),
            Some(other) => Err(format!("unknown format '{other}' (text|bin|sgr)")),
            None if path.ends_with(".bin") => Ok(GraphFormat::Bin),
            None if path.ends_with(".sgr") => Ok(GraphFormat::Sgr),
            None => Ok(GraphFormat::Text),
        }
    }
}

/// Loads a graph from `path` honoring an optional explicit format name.
/// `.sgr` inputs go through the zero-copy mmap loader — the CSR arrays
/// stay borrowed from the mapping for the graph's whole lifetime; with
/// `trusted` the `.sgr` checksum pass is skipped (structural validation
/// still runs).
pub fn load_graph(path: &str, explicit: Option<&str>, trusted: bool) -> Result<CsrGraph, String> {
    let verify = if trusted { sg_store::Verify::Trusted } else { sg_store::Verify::Checksum };
    let res = match GraphFormat::resolve(path, explicit)? {
        GraphFormat::Text => io::load_text(path),
        GraphFormat::Bin => io::load_binary(path),
        GraphFormat::Sgr => {
            sg_store::MmapGraph::open_with(path, verify).map(sg_store::MmapGraph::into_graph)
        }
    };
    res.map_err(|e| format!("loading {path}: {e}"))
}

/// Estimated heap/mapping footprint of a graph's CSR arrays, in bytes.
///
/// This is the shared currency of every byte budget in the system: the
/// stage cache's capacity accounting, the catalog's [`GraphCatalog::
/// total_bytes`], and the serving layer's per-client quotas all measure
/// graphs with this one function, so a graph "costs" the same everywhere.
pub fn graph_approx_bytes(g: &CsrGraph) -> usize {
    g.csr_offsets().len() * 8
        + g.csr_targets().len() * 4
        + g.csr_slot_edges().len() * 4
        + g.edge_slice().len() * 8
        + g.weight_slice().map_or(0, |w| w.len() * 4)
}

/// Saves a graph to `path` honoring an optional explicit format name.
/// `.sgr` outputs are written raw (v1); use [`save_graph_with`] to pick
/// an adjacency encoding.
pub fn save_graph(g: &CsrGraph, path: &str, explicit: Option<&str>) -> Result<(), String> {
    save_graph_with(g, path, explicit, sg_store::Encoding::Raw)
}

/// [`save_graph`] with an explicit `.sgr` adjacency [`sg_store::Encoding`]
/// (raw v1 sections, delta+varint/bitmap v2 sections, or auto = whichever
/// container is smaller). The encoding only affects the `.sgr` format;
/// text and binary outputs ignore it.
pub fn save_graph_with(
    g: &CsrGraph,
    path: &str,
    explicit: Option<&str>,
    encoding: sg_store::Encoding,
) -> Result<(), String> {
    let res = match GraphFormat::resolve(path, explicit)? {
        GraphFormat::Text => io::save_text(g, path),
        GraphFormat::Bin => io::save_binary(g, path).map(|_| ()),
        GraphFormat::Sgr => sg_store::save_sgr_with(g, path, encoding).map(|_| ()),
    };
    res.map_err(|e| format!("writing {path}: {e}"))
}

/// A named, ref-counted graph registration. Cloning is cheap (`Arc`s);
/// the underlying graph stays alive as long as any handle does.
#[derive(Clone)]
pub struct GraphHandle {
    id: GraphId,
    name: Arc<str>,
    source: Arc<str>,
    graph: Arc<CsrGraph>,
}

impl GraphHandle {
    /// The process-unique id of this registration.
    pub fn id(&self) -> GraphId {
        self.id
    }

    /// The catalog name this handle was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable provenance (file path, generator preset, …).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The shared graph allocation (for zero-clone handoff into caches).
    pub fn graph_arc(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// Number of live references to the graph (catalog entry + handles +
    /// cache entries holding the pipeline input).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.graph)
    }

    /// Estimated byte footprint of the registered graph
    /// ([`graph_approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        graph_approx_bytes(&self.graph)
    }
}

impl std::fmt::Debug for GraphHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphHandle")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("source", &self.source)
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .finish()
    }
}

/// The name → handle registry. All methods take `&self`; the catalog is
/// safe to share across daemon connection threads.
pub struct GraphCatalog {
    entries: Mutex<BTreeMap<String, GraphHandle>>,
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self { entries: Mutex::new(BTreeMap::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, GraphHandle>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn mint(&self, name: &str, source: &str, graph: Arc<CsrGraph>) -> GraphHandle {
        GraphHandle {
            id: GraphId(NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed)),
            name: Arc::from(name),
            source: Arc::from(source),
            graph,
        }
    }

    /// Registers an in-memory graph under `name`. Errors if the name is
    /// already taken (evict first to replace).
    pub fn insert(&self, name: &str, graph: CsrGraph, source: &str) -> Result<GraphHandle, String> {
        self.insert_arc(name, Arc::new(graph), source)
    }

    /// [`GraphCatalog::insert`] for an already-shared graph allocation.
    pub fn insert_arc(
        &self,
        name: &str,
        graph: Arc<CsrGraph>,
        source: &str,
    ) -> Result<GraphHandle, String> {
        if name.is_empty() {
            return Err("graph name must be non-empty".to_string());
        }
        let mut entries = self.lock();
        if entries.contains_key(name) {
            return Err(format!("graph '{name}' is already loaded (evict it to replace)"));
        }
        let handle = self.mint(name, source, graph);
        entries.insert(name.to_string(), handle.clone());
        Ok(handle)
    }

    /// Loads `path` under `name` — **at most once**: if `name` is already
    /// registered the existing handle is returned without touching the
    /// file. Returns `(handle, freshly_loaded)`.
    pub fn open(
        &self,
        name: &str,
        path: &str,
        explicit_format: Option<&str>,
        trusted: bool,
    ) -> Result<(GraphHandle, bool), String> {
        if let Some(existing) = self.get(name) {
            return Ok((existing, false));
        }
        // Load outside the lock: concurrent first loads of the same name
        // may both read the file, but only one registration wins and the
        // loser's race is resolved by returning the winner's handle.
        let graph = load_graph(path, explicit_format, trusted)?;
        match self.insert(name, graph, path) {
            Ok(handle) => Ok((handle, true)),
            Err(_) => Ok((self.get(name).expect("insert raced with another load"), false)),
        }
    }

    /// The handle registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<GraphHandle> {
        self.lock().get(name).cloned()
    }

    /// Removes `name`; returns the evicted handle (which keeps the graph
    /// alive for any in-flight request still holding a clone).
    pub fn remove(&self, name: &str) -> Option<GraphHandle> {
        self.lock().remove(name)
    }

    /// Every registered handle, in name order.
    pub fn list(&self) -> Vec<GraphHandle> {
        self.lock().values().cloned().collect()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Estimated total byte footprint of all registered graphs.
    pub fn total_bytes(&self) -> usize {
        self.lock().values().map(GraphHandle::approx_bytes).sum()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl Default for GraphCatalog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sg-core-catalog-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let catalog = GraphCatalog::new();
        let g = generators::erdos_renyi(100, 300, 1);
        let h = catalog.insert("a", g.clone(), "test").expect("insert");
        assert_eq!(h.name(), "a");
        assert_eq!(h.graph().num_edges(), g.num_edges());
        assert!(catalog.insert("a", g, "test").is_err(), "duplicate names are rejected");
        let got = catalog.get("a").expect("present");
        assert_eq!(got.id(), h.id());
        let evicted = catalog.remove("a").expect("evicts");
        assert!(catalog.get("a").is_none());
        // The evicted handle still serves the graph.
        assert_eq!(evicted.graph().num_edges(), h.graph().num_edges());
    }

    #[test]
    fn reregistration_mints_a_fresh_id() {
        let catalog = GraphCatalog::new();
        let a = catalog.insert("g", generators::cycle(10), "v1").expect("insert");
        catalog.remove("g");
        let b = catalog.insert("g", generators::cycle(12), "v2").expect("reinsert");
        assert_ne!(a.id(), b.id(), "ids are never reused");
    }

    #[test]
    fn ids_are_unique_across_catalogs() {
        // A StageCache may be shared by sessions over *different*
        // catalogs; ids from separate catalogs must never collide or one
        // graph's cached bytes could answer for another graph.
        let a = GraphCatalog::new().insert("g", generators::cycle(8), "a").expect("insert");
        let b = GraphCatalog::new().insert("g", generators::cycle(8), "b").expect("insert");
        assert_ne!(a.id(), b.id(), "ids are process-global, not per-catalog");
    }

    #[test]
    fn open_loads_once() {
        let catalog = GraphCatalog::new();
        let path = tmp("once.txt");
        io::save_text(&generators::erdos_renyi(50, 150, 2), &path).expect("save");
        let (first, fresh) = catalog.open("g", &path, None, false).expect("open");
        assert!(fresh);
        // Second open of the same name does not re-read (the file may even
        // be gone).
        std::fs::remove_file(&path).expect("rm");
        let (second, fresh) = catalog.open("g", &path, None, false).expect("open again");
        assert!(!fresh);
        assert_eq!(first.id(), second.id());
    }

    #[test]
    fn open_reports_load_errors() {
        let catalog = GraphCatalog::new();
        let err = catalog.open("g", "/nonexistent/g.txt", None, false).unwrap_err();
        assert!(err.contains("loading"), "{err}");
        assert!(catalog.is_empty());
    }

    #[test]
    fn format_resolution_matches_cli_semantics() {
        assert_eq!(GraphFormat::resolve("x.bin", None).unwrap(), GraphFormat::Bin);
        assert_eq!(GraphFormat::resolve("x.sgr", None).unwrap(), GraphFormat::Sgr);
        assert_eq!(GraphFormat::resolve("x.edges", None).unwrap(), GraphFormat::Text);
        assert_eq!(GraphFormat::resolve("x.bin", Some("text")).unwrap(), GraphFormat::Text);
        assert!(GraphFormat::resolve("x", Some("nope")).is_err());
    }
}
