//! Vertex → subgraph mappings (§4.5.2).
//!
//! Subgraph schemes first decompose the graph into disjoint clusters; the
//! decomposition is captured by a [`VertexMapping`]. Two example mappings are
//! provided, exactly the two the paper names: low-diameter decomposition
//! (in [`crate::ldd`], used by spanners) and Jaccard-similarity clustering
//! (here, used by graph summarization).

use rustc_hash::FxHashMap;
use sg_graph::prng::mix64;
use sg_graph::{CsrGraph, VertexId};

/// A partition of the vertex set into disjoint clusters.
#[derive(Clone, Debug)]
pub struct VertexMapping {
    /// `assignment[v]` = cluster index of `v`.
    pub assignment: Vec<u32>,
    /// Member lists per cluster.
    pub clusters: Vec<Vec<VertexId>>,
}

impl VertexMapping {
    /// Builds a mapping from a per-vertex assignment (cluster ids must be
    /// dense `0..k`).
    pub fn from_assignment(assignment: Vec<u32>) -> Self {
        let k = assignment.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut clusters = vec![Vec::new(); k];
        for (v, &c) in assignment.iter().enumerate() {
            clusters[c as usize].push(v as VertexId);
        }
        Self { assignment, clusters }
    }

    /// Builds a mapping from raw (possibly sparse) cluster labels,
    /// densifying them.
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        let mut assignment = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = remap.len() as u32;
            let id = *remap.entry(l).or_insert(next);
            assignment.push(id);
        }
        Self::from_assignment(assignment)
    }

    /// Number of clusters (the paper's `SG.sgr_cnt`).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster of vertex `v`.
    pub fn cluster_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Size of the largest cluster.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks the partition invariant (every vertex in exactly the cluster
    /// its assignment says).
    pub fn validate(&self) -> bool {
        let mut seen = vec![false; self.assignment.len()];
        for (c, members) in self.clusters.iter().enumerate() {
            for &v in members {
                if seen[v as usize] || self.assignment[v as usize] != c as u32 {
                    return false;
                }
                seen[v as usize] = true;
            }
        }
        seen.into_iter().all(|b| b)
    }
}

/// Jaccard-similarity clustering via minhash grouping (the SWeG-style
/// mapping \[141\]): vertices whose neighborhoods share a minhash land in the
/// same candidate group; within a group, a vertex joins the representative's
/// cluster when the Jaccard similarity of the *closed* neighborhoods reaches
/// `threshold`.
pub fn jaccard_clustering(g: &CsrGraph, threshold: f64, seed: u64) -> VertexMapping {
    let n = g.num_vertices();
    // Minhash of the closed neighborhood (vertex + neighbors); closed so
    // that an isolated vertex still hashes.
    let minhash = |v: VertexId| -> u64 {
        let mut h = mix64(seed ^ v as u64);
        for &u in g.neighbors(v) {
            h = h.min(mix64(seed ^ u as u64));
        }
        h
    };
    let mut groups: FxHashMap<u64, Vec<VertexId>> = FxHashMap::default();
    for v in 0..n as VertexId {
        groups.entry(minhash(v)).or_default().push(v);
    }
    let mut assignment = vec![u32::MAX; n];
    let mut next_cluster = 0u32;
    // Deterministic group order.
    let mut keys: Vec<u64> = groups.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let members = &groups[&key];
        let rep = members[0];
        let rep_cluster = next_cluster;
        next_cluster += 1;
        assignment[rep as usize] = rep_cluster;
        for &v in &members[1..] {
            if jaccard_closed(g, rep, v) >= threshold {
                assignment[v as usize] = rep_cluster;
            } else {
                assignment[v as usize] = next_cluster;
                next_cluster += 1;
            }
        }
    }
    VertexMapping::from_labels(&assignment)
}

/// Label-propagation community mapping — a third example mapping (§4.5.2
/// notes mappings can be built with "the established vertex-centric
/// abstraction"; synchronous min-label propagation is exactly such a
/// program). `rounds` bounds the iteration count; labels converge to
/// connected, community-like clusters usable by subgraph kernels and the
/// clustered low-rank baseline.
pub fn label_propagation_clustering(g: &CsrGraph, rounds: usize, seed: u64) -> VertexMapping {
    let n = g.num_vertices();
    // Start from hashed labels so ties don't all resolve towards vertex 0.
    let mut labels: Vec<u64> = (0..n as u64).map(|v| mix64(seed ^ v)).collect();
    let mut next = labels.clone();
    for _ in 0..rounds {
        let mut changed = false;
        for v in 0..n {
            // Most frequent neighbor label; ties -> smallest hash.
            let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
            for &u in g.neighbors(v as VertexId) {
                *counts.entry(labels[u as usize]).or_insert(0) += 1;
            }
            let best = counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(l, _)| l)
                .unwrap_or(labels[v]);
            if best != next[v] {
                next[v] = best;
                changed = true;
            }
        }
        std::mem::swap(&mut labels, &mut next);
        if !changed {
            break;
        }
    }
    // Dense cluster ids; isolated label islands stay separate clusters.
    let as_u32: Vec<u32> = {
        let mut remap: FxHashMap<u64, u32> = FxHashMap::default();
        labels
            .iter()
            .map(|&l| {
                let next_id = remap.len() as u32;
                *remap.entry(l).or_insert(next_id)
            })
            .collect()
    };
    VertexMapping::from_labels(&as_u32)
}

/// Jaccard similarity of closed neighborhoods |N\[a\] ∩ N\[b\]| / |N\[a\] ∪ N\[b\]|.
pub fn jaccard_closed(g: &CsrGraph, a: VertexId, b: VertexId) -> f64 {
    let na = g.neighbors(a);
    let nb = g.neighbors(b);
    // Merge the two sorted lists, treating the vertex itself as a member.
    let mut ia = 0;
    let mut ib = 0;
    let mut inter = 0usize;
    let mut union = 0usize;
    let merged_a = MergedSorted::new(na, a);
    let merged_b = MergedSorted::new(nb, b);
    let va: Vec<VertexId> = merged_a.collect();
    let vb: Vec<VertexId> = merged_b.collect();
    while ia < va.len() && ib < vb.len() {
        match va[ia].cmp(&vb[ib]) {
            std::cmp::Ordering::Less => {
                ia += 1;
                union += 1;
            }
            std::cmp::Ordering::Greater => {
                ib += 1;
                union += 1;
            }
            std::cmp::Ordering::Equal => {
                ia += 1;
                ib += 1;
                inter += 1;
                union += 1;
            }
        }
    }
    union += va.len() - ia + vb.len() - ib;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Iterator yielding a sorted slice with one extra element spliced in order.
struct MergedSorted<'a> {
    slice: &'a [VertexId],
    extra: Option<VertexId>,
    i: usize,
}

impl<'a> MergedSorted<'a> {
    fn new(slice: &'a [VertexId], extra: VertexId) -> Self {
        Self { slice, extra: Some(extra), i: 0 }
    }
}

impl Iterator for MergedSorted<'_> {
    type Item = VertexId;
    fn next(&mut self) -> Option<VertexId> {
        match (self.slice.get(self.i), self.extra) {
            (Some(&s), Some(e)) if e <= s => {
                self.extra = None;
                if e == s {
                    self.i += 1; // dedup (self-loop-free, but be safe)
                }
                Some(e)
            }
            (Some(&s), _) => {
                self.i += 1;
                Some(s)
            }
            (None, Some(e)) => {
                self.extra = None;
                Some(e)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn mapping_from_assignment_validates() {
        let m = VertexMapping::from_assignment(vec![0, 0, 1, 2, 1]);
        assert_eq!(m.num_clusters(), 3);
        assert!(m.validate());
        assert_eq!(m.cluster_of(4), 1);
        assert_eq!(m.max_cluster_size(), 2);
    }

    #[test]
    fn from_labels_densifies() {
        let m = VertexMapping::from_labels(&[7, 7, 42, 9]);
        assert_eq!(m.num_clusters(), 3);
        assert!(m.validate());
    }

    #[test]
    fn jaccard_of_twins_is_one() {
        // Vertices 0 and 1 both connect to 2 and 3 and to each other.
        let g = CsrGraph::from_pairs(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        assert!((jaccard_closed(&g, 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_strangers_is_low() {
        let g = CsrGraph::from_pairs(4, &[(0, 1), (2, 3)]);
        assert_eq!(jaccard_closed(&g, 0, 2), 0.0);
    }

    #[test]
    fn clustering_partitions_all_vertices() {
        let g = generators::barabasi_albert(500, 3, 1);
        let m = jaccard_clustering(&g, 0.3, 2);
        assert!(m.validate());
        let total: usize = m.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn label_propagation_partitions() {
        let g = generators::watts_strogatz(300, 4, 0.05, 5);
        let m = label_propagation_clustering(&g, 10, 6);
        assert!(m.validate());
        let total: usize = m.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 300);
        // Communities form: far fewer clusters than vertices.
        assert!(m.num_clusters() < 300);
    }

    #[test]
    fn label_propagation_separates_components() {
        let g = CsrGraph::from_pairs(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let m = label_propagation_clustering(&g, 10, 7);
        assert!(m.validate());
        // Vertices in different components can never share a label.
        assert_ne!(m.cluster_of(0), m.cluster_of(3));
    }

    #[test]
    fn twins_cluster_together() {
        // Two twin pairs sharing hubs.
        let g = CsrGraph::from_pairs(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (0, 1), (4, 5)]);
        let m = jaccard_clustering(&g, 0.9, 3);
        assert!(m.validate());
        assert_eq!(m.cluster_of(0), m.cluster_of(1));
    }

    use sg_graph::CsrGraph;
}
