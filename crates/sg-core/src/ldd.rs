//! Low-diameter decomposition (Miller–Peng–Xu style \[111\]).
//!
//! Every vertex draws an exponential shift `δ_v ~ Exp(β)`; vertex `v` joins
//! the cluster of the center `u` minimizing `dist(u, v) - δ_u`. Clusters
//! have diameter `O(log n / β)` w.h.p. and each edge is cut with probability
//! `O(β)`. The spanner kernel (§4.5.3) instantiates `β = ln(n)/k`, giving
//! the `O(k)`-spanner trade-off: larger `k` → larger clusters → fewer
//! surviving edges.

use crate::mapping::VertexMapping;
use sg_graph::prng::unit_f64;
use sg_graph::{CsrGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order f64 key for heaps.
#[derive(Clone, Copy, PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("keys are never NaN")
    }
}

/// Computes a low-diameter decomposition with parameter `beta`.
///
/// Implementation: multi-source Dijkstra over unit-length edges where vertex
/// `u` enters the race with start key `δ_max - δ_u`; the first center to
/// reach a vertex claims it.
pub fn low_diameter_decomposition(g: &CsrGraph, beta: f64, seed: u64) -> VertexMapping {
    assert!(beta > 0.0, "beta must be positive");
    let n = g.num_vertices();
    if n == 0 {
        return VertexMapping::from_assignment(Vec::new());
    }
    // Exponential shifts: δ = -ln(1 - U) / β, deterministic per vertex.
    let shifts: Vec<f64> =
        (0..n as u64).map(|v| -(1.0 - unit_f64(seed ^ 0x1dd, v)).ln() / beta).collect();
    let delta_max = shifts.iter().copied().fold(0.0f64, f64::max);

    let mut owner: Vec<u32> = vec![u32::MAX; n];
    let mut dist: Vec<f64> = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(Key, VertexId, VertexId)>> = BinaryHeap::new();
    for v in 0..n as VertexId {
        let start = delta_max - shifts[v as usize];
        heap.push(Reverse((Key(start), v, v)));
    }
    while let Some(Reverse((Key(d), v, center))) = heap.pop() {
        if owner[v as usize] != u32::MAX {
            continue;
        }
        owner[v as usize] = center;
        dist[v as usize] = d;
        for &w in g.neighbors(v) {
            if owner[w as usize] == u32::MAX {
                heap.push(Reverse((Key(d + 1.0), w, center)));
            }
        }
    }
    VertexMapping::from_labels(&owner)
}

/// LDD instantiated for an O(k)-spanner.
///
/// Calibration note: the textbook choice `β = ln(n)/k` makes cluster counts
/// collapse like `n^{1/k}`, which on low-diameter synthetic graphs jumps
/// from "all singletons" to "one giant cluster" between k = 2 and k = 8 —
/// no k-gradation survives. `β = 1.5·√(ln(n)/k)` decays the granularity
/// smoothly and reproduces the paper's observed sweep (edge removal rising
/// from ≈20% at k = 2 towards the spanning-forest floor at k = 128) while
/// keeping the defining monotonicity: larger k → larger clusters → fewer
/// edges, more stretch. See EXPERIMENTS.md (E5/E9) for the measurement.
pub fn ldd_for_spanner(g: &CsrGraph, k: f64, seed: u64) -> VertexMapping {
    let n = g.num_vertices().max(2) as f64;
    let beta = (1.5 * (n.ln() / k.max(1.0)).sqrt()).max(1e-6);
    low_diameter_decomposition(g, beta, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn partition_is_valid() {
        let g = generators::erdos_renyi(400, 1600, 1);
        let m = low_diameter_decomposition(&g, 0.5, 2);
        assert!(m.validate());
    }

    #[test]
    fn clusters_are_connected() {
        let g = generators::grid(12, 12);
        let m = low_diameter_decomposition(&g, 0.4, 3);
        // Every cluster must induce a connected subgraph (claims propagate
        // along edges from the center).
        for members in &m.clusters {
            let mut in_cluster = vec![false; g.num_vertices()];
            for &v in members {
                in_cluster[v as usize] = true;
            }
            let (tree, _) = sg_algos::spanning::cluster_spanning_tree(&g, members, &in_cluster);
            assert_eq!(tree.len(), members.len() - 1, "cluster not connected");
        }
    }

    #[test]
    fn large_beta_gives_many_small_clusters() {
        let g = generators::grid(15, 15);
        let fine = low_diameter_decomposition(&g, 4.0, 4);
        let coarse = low_diameter_decomposition(&g, 0.05, 4);
        assert!(fine.num_clusters() > coarse.num_clusters());
    }

    #[test]
    fn spanner_k_controls_granularity() {
        let g = generators::rmat_graph500(10, 8, 5);
        let k2 = ldd_for_spanner(&g, 2.0, 6);
        let k32 = ldd_for_spanner(&g, 32.0, 6);
        assert!(k2.num_clusters() >= k32.num_clusters());
    }

    #[test]
    fn empty_graph() {
        let g = sg_graph::CsrGraph::from_pairs(0, &[]);
        let m = low_diameter_decomposition(&g, 1.0, 1);
        assert_eq!(m.num_clusters(), 0);
    }

    #[test]
    fn deterministic() {
        let g = generators::erdos_renyi(200, 800, 9);
        let a = low_diameter_decomposition(&g, 0.7, 11);
        let b = low_diameter_decomposition(&g, 0.7, 11);
        assert_eq!(a.assignment, b.assignment);
    }
}
