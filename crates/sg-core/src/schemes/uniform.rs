//! Random uniform edge sampling (§4.2.2).
//!
//! Every edge is removed independently with probability `p` (the paper's
//! evaluation convention: "Uniform (p = 0.2)" removes 20% of edges, leaving
//! `(1-p)m` in expectation and `(1-p)^3 T` triangles — the Doulion estimator
//! \[156\] this scheme rapidly approximates).

use crate::context::SgContext;
use crate::engine::{CompressionResult, Engine};
use crate::kernel::{EdgeDecision, EdgeKernel, EdgeView};
use sg_graph::CsrGraph;

/// The `random_uniform` kernel of Listing 1.
#[derive(Clone, Copy, Debug)]
pub struct UniformKernel {
    /// Removal probability (edge *stays* with probability `1 - p`).
    pub p: f64,
}

impl UniformKernel {
    /// Creates the kernel; `p` must lie in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        Self { p }
    }
}

impl EdgeKernel for UniformKernel {
    fn process(&self, e: EdgeView, sg: &SgContext<'_>) -> EdgeDecision {
        let edge_stays = 1.0 - self.p;
        if edge_stays < sg.rand_unit(e.id as u64, 0) {
            EdgeDecision::Delete // atomic SG.del(e)
        } else {
            EdgeDecision::Keep
        }
    }
}

/// Convenience wrapper: uniform sampling with removal probability `p`.
pub fn uniform_sample(g: &CsrGraph, p: f64, seed: u64) -> CompressionResult {
    Engine::new(seed).run_edge_kernel(g, &UniformKernel::new(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn removes_expected_fraction() {
        let g = generators::erdos_renyi(2000, 20_000, 1);
        let r = uniform_sample(&g, 0.3, 2);
        let ratio = r.compression_ratio();
        assert!((ratio - 0.7).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn p_zero_keeps_everything() {
        let g = generators::erdos_renyi(200, 1000, 3);
        let r = uniform_sample(&g, 0.0, 4);
        assert_eq!(r.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn p_one_removes_everything() {
        let g = generators::erdos_renyi(200, 1000, 5);
        let r = uniform_sample(&g, 1.0, 6);
        assert_eq!(r.graph.num_edges(), 0);
        assert_eq!(r.graph.num_vertices(), 200); // vertex set untouched
    }

    #[test]
    fn triangle_count_scales_cubically() {
        // Table 2: uniform sampling preserves T best: E[T'] = (1-p)^3 T.
        let g = generators::planted_triangles(&generators::erdos_renyi(3000, 6000, 7), 4000, 8);
        let t0 = sg_algos::tc::count_triangles(&g) as f64;
        let p = 0.5;
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let r = uniform_sample(&g, p, 100 + seed);
            let t1 = sg_algos::tc::count_triangles(&r.graph) as f64;
            ratios.push(t1 / t0);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let expected = (1.0f64 - p).powi(3);
        assert!((mean - expected).abs() < 0.05, "mean {mean}, expected {expected}");
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_bad_p() {
        UniformKernel::new(1.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(500, 2000, 9);
        let a = uniform_sample(&g, 0.4, 42);
        let b = uniform_sample(&g, 0.4, 42);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
        let c = uniform_sample(&g, 0.4, 43);
        assert_ne!(a.graph.edge_slice(), c.graph.edge_slice());
    }
}
