//! Cut sparsification via Nagamochi–Ibaraki forest decomposition.
//!
//! §4.6 lists Benczúr–Karger cut sparsifiers \[16\] among the schemes that
//! "could be used in future Slim Graph versions as new compression
//! kernels"; this module provides that extension. Instead of the full
//! strength-sampling machinery we use the classic Nagamochi–Ibaraki
//! certificate: partition the edges into maximal spanning forests
//! F₁, F₂, …; the union of the first `k` forests preserves *every* cut of
//! value ≤ k exactly and every larger cut to value ≥ k. This is a
//! deterministic cut-preserving sparsifier with `≤ k·(n-1)` edges,
//! expressible as an edge kernel once forest indices are annotated —
//! the same pattern the spectral kernel uses for its Υ parameter.

use crate::context::SgContext;
use crate::engine::{CompressionResult, Engine};
use crate::kernel::{EdgeDecision, EdgeKernel, EdgeView};
use sg_algos::union_find::UnionFind;
use sg_graph::{CsrGraph, EdgeId};

/// Assigns every edge its Nagamochi–Ibaraki forest index (1-based):
/// edge e is in forest `i` if it connects two components of the union of
/// forests 1..i-1 restricted processing. Computed by repeatedly extracting
/// spanning forests (simple O(k·m·α) variant — fine at evaluation scale).
pub fn forest_indices(g: &CsrGraph) -> Vec<u32> {
    let m = g.num_edges();
    let mut index = vec![0u32; m];
    let mut remaining: Vec<EdgeId> = (0..m as EdgeId).collect();
    let mut level = 0u32;
    while !remaining.is_empty() {
        level += 1;
        let mut uf = UnionFind::new(g.num_vertices());
        let mut next_round = Vec::new();
        for &e in &remaining {
            let (u, v) = g.edge_endpoints(e);
            if uf.union(u, v) {
                index[e as usize] = level;
            } else {
                next_round.push(e);
            }
        }
        if next_round.len() == remaining.len() {
            // Should be impossible (each pass extracts a forest); guard
            // against an infinite loop all the same.
            for &e in &next_round {
                index[e as usize] = level;
            }
            break;
        }
        remaining = next_round;
    }
    index
}

/// The cut-sparsification kernel: keep edge e iff its forest index is ≤ k.
pub struct CutSparsifyKernel {
    /// Precomputed per-edge forest indices.
    pub indices: Vec<u32>,
    /// Connectivity threshold: cuts of value ≤ k are preserved exactly.
    pub k: u32,
}

impl EdgeKernel for CutSparsifyKernel {
    fn process(&self, e: EdgeView, _sg: &SgContext<'_>) -> EdgeDecision {
        if self.indices[e.id as usize] <= self.k {
            EdgeDecision::Keep
        } else {
            EdgeDecision::Delete
        }
    }
}

/// Cut-sparsifies `g`: the result preserves all cuts of value ≤ `k` and
/// keeps at most `k·(n-1)` edges.
pub fn cut_sparsify(g: &CsrGraph, k: u32, seed: u64) -> CompressionResult {
    assert!(k >= 1, "connectivity threshold must be at least 1");
    let kernel = CutSparsifyKernel { indices: forest_indices(g), k };
    Engine::new(seed).run_edge_kernel(g, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_algos::cc::connected_components;
    use sg_graph::generators;

    /// Brute-force minimum s-t cut value on tiny graphs via max-flow
    /// (Ford–Fulkerson over unit capacities, BFS augmenting paths).
    fn min_st_cut(g: &CsrGraph, s: u32, t: u32) -> usize {
        // Residual capacities per directed pair.
        use rustc_hash::FxHashMap;
        let mut cap: FxHashMap<(u32, u32), i64> = FxHashMap::default();
        for (_, u, v) in g.edge_iter() {
            *cap.entry((u, v)).or_insert(0) += 1;
            *cap.entry((v, u)).or_insert(0) += 1;
        }
        let mut flow = 0usize;
        loop {
            // BFS for an augmenting path.
            let n = g.num_vertices();
            let mut prev = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            prev[s as usize] = s;
            while let Some(u) = queue.pop_front() {
                if u == t {
                    break;
                }
                for &v in g.neighbors(u) {
                    if prev[v as usize] == u32::MAX && cap.get(&(u, v)).copied().unwrap_or(0) > 0 {
                        prev[v as usize] = u;
                        queue.push_back(v);
                    }
                }
            }
            if prev[t as usize] == u32::MAX {
                return flow;
            }
            // Augment by 1 along the path.
            let mut v = t;
            while v != s {
                let u = prev[v as usize];
                *cap.get_mut(&(u, v)).expect("edge on path") -= 1;
                *cap.entry((v, u)).or_insert(0) += 1;
                v = u;
            }
            flow += 1;
        }
    }

    #[test]
    fn forest_indices_cover_all_edges() {
        let g = generators::erdos_renyi(100, 600, 1);
        let idx = forest_indices(&g);
        assert!(idx.iter().all(|&i| i >= 1));
        // First forest is a spanning forest: exactly n - #CC edges.
        let cc = connected_components(&g).num_components;
        let first = idx.iter().filter(|&&i| i == 1).count();
        assert_eq!(first, 100 - cc);
    }

    #[test]
    fn sparsifier_edge_budget() {
        let g = generators::erdos_renyi(200, 3000, 2);
        for k in [1, 2, 4] {
            let r = cut_sparsify(&g, k, 3);
            assert!(r.graph.num_edges() <= (k as usize) * 199, "k = {k}");
        }
    }

    #[test]
    fn k1_preserves_connectivity() {
        let g = generators::rmat_graph500(10, 8, 4);
        let r = cut_sparsify(&g, 1, 5);
        assert_eq!(
            connected_components(&g).num_components,
            connected_components(&r.graph).num_components
        );
    }

    #[test]
    fn small_cuts_preserved_exactly() {
        // NI certificate: every s-t cut of value <= k keeps its exact value.
        let g = generators::erdos_renyi(24, 90, 6);
        let k = 3;
        let r = cut_sparsify(&g, k, 7);
        for t in 1..12u32 {
            let before = min_st_cut(&g, 0, t);
            let after = min_st_cut(&r.graph, 0, t);
            if before <= k as usize {
                assert_eq!(before, after, "cut 0-{t} changed");
            } else {
                assert!(after >= k as usize, "cut 0-{t} fell below k");
            }
        }
    }

    #[test]
    fn larger_k_keeps_more() {
        let g = generators::erdos_renyi(150, 2000, 8);
        let r1 = cut_sparsify(&g, 1, 9);
        let r3 = cut_sparsify(&g, 3, 9);
        assert!(r3.graph.num_edges() > r1.graph.num_edges());
    }

    use sg_graph::CsrGraph;
}
