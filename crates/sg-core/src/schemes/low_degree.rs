//! Single-vertex kernel: low-degree vertex removal (§4.4).
//!
//! Removes all vertices of degree 0 or 1 (Listing 1, `low_degree`). Degree-1
//! vertices contribute nothing to shortest paths between vertices of higher
//! degree, so betweenness centrality of the surviving core is preserved
//! exactly \[132\].

use crate::context::SgContext;
use crate::engine::{CompressionResult, Engine};
use crate::kernel::{VertexDecision, VertexKernel, VertexView};
use sg_graph::CsrGraph;

/// The `low_degree` kernel of Listing 1, generalized to a threshold.
#[derive(Clone, Copy, Debug)]
pub struct LowDegreeKernel {
    /// Vertices with degree ≤ `threshold` are deleted (paper uses 1).
    pub threshold: usize,
}

impl Default for LowDegreeKernel {
    fn default() -> Self {
        Self { threshold: 1 }
    }
}

impl VertexKernel for LowDegreeKernel {
    fn process(&self, v: VertexView, _sg: &SgContext<'_>) -> VertexDecision {
        if v.degree <= self.threshold {
            VertexDecision::Delete // atomic SG.del(v)
        } else {
            VertexDecision::Keep
        }
    }
}

/// Removes all degree-0 and degree-1 vertices (one pass).
pub fn remove_low_degree(g: &CsrGraph, seed: u64) -> CompressionResult {
    Engine::new(seed).run_vertex_kernel(g, &LowDegreeKernel::default())
}

/// Iterates [`remove_low_degree`] to a fixed point (peeling chains).
/// Returns the final graph plus the number of passes.
pub fn remove_low_degree_to_fixpoint(g: &CsrGraph, seed: u64) -> (CompressionResult, usize) {
    let mut result = remove_low_degree(g, seed);
    let mut passes = 1;
    loop {
        let again = remove_low_degree(&result.graph, seed);
        if again.graph.num_vertices() == result.graph.num_vertices() {
            return (result, passes);
        }
        // Keep original baselines so ratios refer to the true input.
        result = CompressionResult {
            graph: again.graph,
            original_edges: result.original_edges,
            original_vertices: result.original_vertices,
            elapsed: result.elapsed + again.elapsed,
            vertex_mapping: None, // composite mapping not tracked across passes
        };
        passes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_algos::bc::betweenness_exact;
    use sg_graph::generators;

    #[test]
    fn star_collapses_to_hub() {
        let g = generators::star(10);
        let r = remove_low_degree(&g, 1);
        assert_eq!(r.graph.num_vertices(), 1);
        assert_eq!(r.graph.num_edges(), 0);
    }

    #[test]
    fn cycle_is_untouched() {
        let g = generators::cycle(12);
        let r = remove_low_degree(&g, 2);
        assert_eq!(r.graph.num_vertices(), 12);
        assert_eq!(r.graph.num_edges(), 12);
    }

    #[test]
    fn table3_row_counts() {
        // Table 3: removing k degree-1 vertices gives n-k vertices, m-k edges.
        let g = CsrGraph::from_pairs(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (2, 4), (4, 5)]);
        // Degree-1: 3, 5; degree-0: 6 -> k = 3 vertices, 2 edges removed.
        let r = remove_low_degree(&g, 3);
        assert_eq!(r.graph.num_vertices(), 4);
        assert_eq!(r.graph.num_edges(), 4);
    }

    #[test]
    fn fixpoint_peels_paths_completely() {
        let g = generators::path(10);
        let (r, passes) = remove_low_degree_to_fixpoint(&g, 4);
        assert_eq!(r.graph.num_vertices(), 0);
        assert!(passes >= 2);
    }

    #[test]
    fn core_shortest_paths_unchanged() {
        // §4.4 / [132]: degree-1 vertices lie on no shortest path between
        // vertices of higher degree, so all pairwise distances among
        // survivors are exactly preserved — the property that makes core BC
        // contributions (paths among core vertices) exact.
        let g = CsrGraph::from_pairs(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 4), (3, 5), (5, 6), (2, 7)],
        );
        let r = remove_low_degree(&g, 5);
        let mapping = r.vertex_mapping.expect("vertex kernel");
        let survivors: Vec<usize> = (0..8).filter(|&v| mapping[v].is_some()).collect();
        for &a in &survivors {
            let before = sg_algos::sssp::dijkstra(&g, a as u32);
            let na = mapping[a].expect("survivor");
            let after = sg_algos::sssp::dijkstra(&r.graph, na);
            for &b in &survivors {
                let nb = mapping[b].expect("survivor") as usize;
                assert_eq!(before[b], after[nb], "distance {a}->{b} changed");
            }
        }
        // Degree-2+ survivors keep positive betweenness where they had it.
        let bc_after = betweenness_exact(&r.graph);
        assert!(bc_after.iter().any(|&x| x > 0.0));
    }

    use sg_graph::CsrGraph;
}
