//! Triangle Reduction (TR) — the compression class proposed by the paper
//! (§4.3).
//!
//! A fraction `p` of triangles is sampled u.a.r.; from each sampled triangle
//! `x ∈ {1, 2}` edges are removed. Variants:
//!
//! * **Plain p-x-TR** — remove `x` edges chosen u.a.r. (Listing 1,
//!   `p-1-reduction`),
//! * **Edge-Once (EO)** — each edge is considered at most once: a sampled
//!   triangle whose edges were all unconsidered claims all three and deletes
//!   `x`; triangles touching a considered edge are skipped. Reduced
//!   triangles are therefore *edge-disjoint*, which is what makes connected
//!   components (and, with max-weight choice, the exact MST weight)
//!   provably survive (§6.1),
//! * **Count-Triangles (CT)** — EO plus ordering: triangles are processed
//!   starting from edges that belong to the fewest triangles, removing such
//!   edges first (Figure 6's `CT-0.5-1-TR`),
//! * **max-weight choice** — remove the heaviest edge, preserving the MST
//!   weight exactly,
//! * **Collapse** — contract each sampled triangle into a single vertex
//!   (changes the vertex set; maximal storage reduction).

use crate::context::{DetRand, SgContext};
use crate::engine::{CompressionResult, Engine};
use crate::kernel::{Triangle, TriangleKernel};
use sg_algos::tc;
use sg_algos::union_find::UnionFind;
use sg_graph::prng::mix64;
use sg_graph::{CsrGraph, EdgeId, EdgeList, GraphView, VertexId, Weight};
use std::time::Instant;

/// Which edge(s) of a sampled triangle are removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeChoice {
    /// Uniformly random edge (the basic TR of Listing 1).
    Random,
    /// The maximum-weight edge — preserves the exact MST weight.
    MaxWeight,
    /// The edge contained in the fewest triangles (the CT variant).
    FewestTriangles,
}

/// Whether edges may be considered by more than one kernel instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Every sampled triangle acts independently.
    Plain,
    /// Edge-Once: reduced triangles are forced edge-disjoint.
    EdgeOnce,
}

/// Full TR configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrConfig {
    /// Probability of sampling (reducing) a triangle.
    pub p: f64,
    /// Edges removed per sampled triangle (1 or 2).
    pub x: usize,
    /// Consideration discipline.
    pub discipline: Discipline,
    /// Edge-selection rule.
    pub choice: EdgeChoice,
}

impl TrConfig {
    /// Basic Triangle p-1-Reduction.
    pub fn plain_1(p: f64) -> Self {
        Self { p, x: 1, discipline: Discipline::Plain, choice: EdgeChoice::Random }
    }

    /// Triangle p-2-Reduction (more aggressive).
    pub fn plain_2(p: f64) -> Self {
        Self { p, x: 2, discipline: Discipline::Plain, choice: EdgeChoice::Random }
    }

    /// Edge-Once p-1-TR.
    pub fn edge_once_1(p: f64) -> Self {
        Self { p, x: 1, discipline: Discipline::EdgeOnce, choice: EdgeChoice::Random }
    }

    /// CT variant: Edge-Once plus fewest-triangles-first ordering.
    pub fn count_triangles(p: f64) -> Self {
        Self { p, x: 1, discipline: Discipline::EdgeOnce, choice: EdgeChoice::FewestTriangles }
    }

    /// EO p-1-TR removing the maximum-weight edge (exact MST preservation).
    pub fn max_weight(p: f64) -> Self {
        Self { p, x: 1, discipline: Discipline::EdgeOnce, choice: EdgeChoice::MaxWeight }
    }

    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.p), "p must be in [0, 1]");
        assert!(self.x == 1 || self.x == 2, "x must be 1 or 2");
    }

    /// Scheme label matching the paper's naming (`EO-0.5-1-TR`, …).
    pub fn label(&self) -> String {
        let prefix = match (self.discipline, self.choice) {
            (Discipline::Plain, _) => "",
            (Discipline::EdgeOnce, EdgeChoice::FewestTriangles) => "CT-",
            (Discipline::EdgeOnce, _) => "EO-",
        };
        format!("{prefix}{}-{}-TR", self.p, self.x)
    }
}

/// Deterministic per-triangle key for sampling decisions. Public so the
/// sharded executors in sg-dist draw the *same* randomness per triangle as
/// the in-process kernel — the single source of truth for TR sampling.
#[inline]
pub fn triangle_key(t: &Triangle) -> u64 {
    mix64(t.u as u64 ^ mix64(t.v as u64 ^ mix64(t.w as u64)))
}

/// Whether triangle `t` is sampled for reduction at probability `p` under
/// `rand`. This is the exact sampling rule of
/// [`TriangleReductionKernel::process`]; sg-dist ranks call it so sharded
/// runs stay bit-identical to `scheme.apply`.
#[inline]
pub fn triangle_sampled(t: &Triangle, p: f64, rand: DetRand) -> bool {
    1.0 - p < rand.unit(triangle_key(t), 1)
}

/// Orders a triangle's edges by `choice`; the first `x` are deletion
/// candidates. `weight_of` supplies edge weights (only consulted by
/// [`EdgeChoice::MaxWeight`]); `tri_counts` supplies per-edge triangle
/// counts (required by [`EdgeChoice::FewestTriangles`]). Shared between the
/// in-process kernel and the sharded executors so both rank identically.
pub fn ranked_triangle_edges(
    t: &Triangle,
    choice: EdgeChoice,
    rand: DetRand,
    weight_of: impl Fn(EdgeId) -> Weight,
    tri_counts: Option<&[u64]>,
) -> [EdgeId; 3] {
    let mut edges = t.edges();
    match choice {
        EdgeChoice::Random => {
            let key = triangle_key(t);
            // Deterministic random rotation + swap = uniform permutation.
            let r = rand.below(key, 2, 6);
            let perm: [usize; 3] = match r {
                0 => [0, 1, 2],
                1 => [0, 2, 1],
                2 => [1, 0, 2],
                3 => [1, 2, 0],
                4 => [2, 0, 1],
                _ => [2, 1, 0],
            };
            edges = [edges[perm[0]], edges[perm[1]], edges[perm[2]]];
        }
        EdgeChoice::MaxWeight => {
            edges.sort_unstable_by(|&a, &b| weight_of(b).total_cmp(&weight_of(a)).then(b.cmp(&a)));
        }
        EdgeChoice::FewestTriangles => {
            let counts = tri_counts.expect("CT requires counts");
            edges.sort_unstable_by_key(|&e| (counts[e as usize], e));
        }
    }
    edges
}

/// The TR compression kernel (`p-1-reduction` / `p-1-reduction-EO` of
/// Listing 1, generalized over x and the edge choice).
pub struct TriangleReductionKernel {
    cfg: TrConfig,
    /// Per-edge triangle counts; required by [`EdgeChoice::FewestTriangles`].
    tri_counts: Option<Vec<u64>>,
}

impl TriangleReductionKernel {
    /// Builds the kernel, precomputing per-edge triangle counts when the CT
    /// choice needs them.
    pub fn new(g: &CsrGraph, cfg: TrConfig) -> Self {
        cfg.validate();
        let tri_counts =
            (cfg.choice == EdgeChoice::FewestTriangles).then(|| edge_triangle_counts(g));
        Self { cfg, tri_counts }
    }

    /// Orders the triangle's edges by the configured choice; the first `x`
    /// are deleted.
    fn ranked_edges(&self, t: &Triangle, sg: &SgContext<'_>) -> [EdgeId; 3] {
        ranked_triangle_edges(
            t,
            self.cfg.choice,
            sg.rand(),
            |e| sg.graph.edge_weight(e),
            self.tri_counts.as_deref(),
        )
    }
}

impl TriangleKernel for TriangleReductionKernel {
    fn parallel(&self) -> bool {
        // Edge-Once semantics are enforced via a deterministic sequential
        // pass over the sorted triangle stream.
        self.cfg.discipline == Discipline::Plain
    }

    fn process(&self, t: &Triangle, sg: &SgContext<'_>) {
        if !triangle_sampled(t, self.cfg.p, sg.rand()) {
            return; // triangle not sampled for reduction
        }
        match self.cfg.discipline {
            Discipline::Plain => {
                let ranked = self.ranked_edges(t, sg);
                for &e in ranked.iter().take(self.cfg.x) {
                    sg.del_edge(e);
                }
            }
            Discipline::EdgeOnce => {
                if self.cfg.choice == EdgeChoice::FewestTriangles {
                    // CT: each edge is considered at most once, and edges in
                    // the fewest triangles are removed first. A sampled
                    // triangle deletes its first x still-unconsidered edges
                    // in rank order — so overlapping triangles spread their
                    // deletions over *distinct* edges, which is why CT
                    // consistently yields smaller m than plain p-1-TR
                    // (Figure 6, right).
                    let ranked = self.ranked_edges(t, sg);
                    let mut deleted = 0usize;
                    for &e in &ranked {
                        if deleted == self.cfg.x {
                            break;
                        }
                        if sg.consider_edge_once(e) {
                            sg.del_edge(e);
                            deleted += 1;
                        }
                    }
                } else {
                    // Protective EO: a sampled triangle proceeds only when
                    // *all three* edges are unconsidered, then claims them
                    // and deletes x. Reduced triangles are therefore
                    // edge-disjoint — the assumption under which §6.1 proves
                    // CC preservation, ≤2× stretch, and (with the max-weight
                    // choice) exact MST weight. (Listing 1's EO kernel is
                    // ambiguous on this point; we pick the reading that
                    // realizes the paper's stated guarantees.)
                    if t.edges().iter().any(|&e| sg.edge_considered(e)) {
                        return; // some edge already claimed by another triangle
                    }
                    for &e in &t.edges() {
                        sg.consider_edge_once(e);
                    }
                    let ranked = self.ranked_edges(t, sg);
                    for &e in ranked.iter().take(self.cfg.x) {
                        sg.del_edge(e);
                    }
                }
            }
        }
    }
}

/// Per-edge triangle participation counts.
pub fn edge_triangle_counts(g: &CsrGraph) -> Vec<u64> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let counts: Vec<AtomicU64> = (0..g.num_edges()).map(|_| AtomicU64::new(0)).collect();
    tc::for_each_triangle(g, |t| {
        for e in t.edges() {
            counts[e as usize].fetch_add(1, Ordering::Relaxed);
        }
    });
    counts.into_iter().map(|a| a.into_inner()).collect()
}

/// Runs Triangle Reduction with the given configuration.
pub fn triangle_reduce(g: &CsrGraph, cfg: TrConfig, seed: u64) -> CompressionResult {
    cfg.validate();
    let kernel = TriangleReductionKernel::new(g, cfg);
    if cfg.choice == EdgeChoice::FewestTriangles {
        // CT processes triangles starting from the rarest edges, so the
        // stream must be re-ordered before the sequential EO pass.
        let start = Instant::now();
        let counts = kernel.tri_counts.as_ref().expect("CT counts");
        let mut tris = tc::list_triangles(g);
        tris.sort_by_key(|t| {
            let c = t.edges().map(|e| counts[e as usize]);
            (*c.iter().min().expect("three edges"), t.u, t.v, t.w)
        });
        let sg = SgContext::new(g, seed);
        for t in &tris {
            kernel.process(t, &sg);
        }
        let graph = g.filter_edges(|e| !sg.edge_deleted(e));
        CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        }
    } else {
        Engine::new(seed).run_triangle_kernel(g, &kernel)
    }
}

/// Triangle p-Reduction by Collapse: each sampled triangle is contracted to
/// a single vertex (§4.3). Changes the vertex set; parallel edges merge and
/// self-loops vanish during re-canonicalization.
pub fn triangle_collapse(g: &CsrGraph, p: f64, seed: u64) -> CompressionResult {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let start = Instant::now();
    let sg = SgContext::new(g, seed);
    let tris = tc::list_triangles(g);
    let mut uf = UnionFind::new(g.num_vertices());
    for t in &tris {
        let key = triangle_key(t);
        if 1.0 - p < sg.rand_unit(key, 1) {
            uf.union(t.u, t.v);
            uf.union(t.v, t.w);
        }
    }
    // Compact representative ids.
    let n = g.num_vertices();
    let mut new_id: Vec<Option<VertexId>> = vec![None; n];
    let mut next: VertexId = 0;
    for v in 0..n as VertexId {
        let r = uf.find(v);
        if new_id[r as usize].is_none() {
            new_id[r as usize] = Some(next);
            next += 1;
        }
    }
    let mapping: Vec<Option<VertexId>> =
        (0..n as VertexId).map(|v| new_id[uf.find(v) as usize]).collect();
    let mut el = EdgeList::with_capacity(next as usize, g.num_edges());
    for (_, u, v) in g.edge_iter() {
        let (nu, nv) = (
            mapping[u as usize].expect("all vertices mapped"),
            mapping[v as usize].expect("all vertices mapped"),
        );
        if nu != nv {
            el.edges.push((nu, nv));
        }
    }
    let graph = CsrGraph::from_edge_list(el);
    CompressionResult {
        graph,
        original_edges: g.num_edges(),
        original_vertices: g.num_vertices(),
        elapsed: start.elapsed(),
        vertex_mapping: Some(mapping),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_algos::cc::connected_components;
    use sg_algos::mst::minimum_spanning_forest;
    use sg_graph::generators;

    fn triangle_rich() -> CsrGraph {
        generators::planted_triangles(&generators::erdos_renyi(800, 1600, 1), 1200, 2)
    }

    #[test]
    fn plain_p1_full_reduction_kills_all_triangles() {
        let g = triangle_rich();
        let r = triangle_reduce(&g, TrConfig::plain_1(1.0), 3);
        assert_eq!(tc::count_triangles(&r.graph), 0);
        assert!(r.edges_removed() > 0);
    }

    #[test]
    fn p_zero_is_identity() {
        let g = triangle_rich();
        let r = triangle_reduce(&g, TrConfig::plain_1(0.0), 4);
        assert_eq!(r.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn eo_preserves_connected_components_deterministically() {
        // §6.1 "Others": EO forces reduced triangles to be edge-disjoint, so
        // every deleted edge leaves a 2-path behind — CC is exactly
        // preserved, for any p and seed.
        for seed in [5, 6, 7] {
            let g = triangle_rich();
            let before = connected_components(&g).num_components;
            let r = triangle_reduce(&g, TrConfig::edge_once_1(1.0), seed);
            let after = connected_components(&r.graph).num_components;
            assert_eq!(before, after, "seed {seed}");
        }
    }

    #[test]
    fn eo_shortest_paths_stretch_at_most_two() {
        // §6.1: at most one edge deleted per (edge-disjoint) triangle, so
        // s-t distances at most double.
        let g = generators::watts_strogatz(300, 5, 0.1, 8);
        let r = triangle_reduce(&g, TrConfig::edge_once_1(1.0), 9);
        let before = sg_algos::sssp::dijkstra(&g, 0);
        let after = sg_algos::sssp::dijkstra(&r.graph, 0);
        for (b, a) in before.iter().zip(&after) {
            if b.is_finite() {
                assert!(a.is_finite(), "disconnected by EO-TR");
                assert!(*a <= 2.0 * *b + 1e-9, "stretch violated: {b} -> {a}");
            }
        }
    }

    #[test]
    fn max_weight_choice_preserves_mst_weight() {
        let g = generators::with_random_weights(&triangle_rich(), 1.0, 100.0, 10);
        let before = minimum_spanning_forest(&g).total_weight;
        let r = triangle_reduce(&g, TrConfig::max_weight(1.0), 11);
        assert!(r.edges_removed() > 0);
        let after = minimum_spanning_forest(&r.graph).total_weight;
        assert!((before - after).abs() < 1e-3, "MST weight changed: {before} -> {after}");
    }

    #[test]
    fn p2_removes_more_than_p1() {
        let g = triangle_rich();
        let r1 = triangle_reduce(&g, TrConfig::plain_1(0.7), 12);
        let r2 = triangle_reduce(&g, TrConfig::plain_2(0.7), 12);
        assert!(r2.edges_removed() > r1.edges_removed());
    }

    #[test]
    fn ct_removes_more_than_plain_at_fixed_p() {
        // Figure 6 (right): the CT variant consistently delivers smaller m
        // than simple p-1-TR for fixed p = 0.5 — plain TR wastes samples
        // re-deleting edges of overlapping triangles, while CT spreads each
        // sampled triangle's deletion to a fresh edge.
        let g = generators::planted_triangles(&generators::erdos_renyi(600, 1200, 13), 3000, 14);
        let plain = triangle_reduce(&g, TrConfig::plain_1(0.5), 15);
        let ct = triangle_reduce(&g, TrConfig::count_triangles(0.5), 15);
        assert!(
            ct.graph.num_edges() < plain.graph.num_edges(),
            "CT {} vs plain {}",
            ct.graph.num_edges(),
            plain.graph.num_edges()
        );
        // Protective EO trades compression for its §6.1 guarantees: it
        // removes no more than plain, but still compresses.
        let eo = triangle_reduce(&g, TrConfig::edge_once_1(0.5), 15);
        assert!(eo.edges_removed() > 0);
        assert!(eo.graph.num_edges() >= plain.graph.num_edges());
    }

    #[test]
    fn collapse_shrinks_vertex_set() {
        let g = triangle_rich();
        let r = triangle_collapse(&g, 0.8, 16);
        assert!(r.graph.num_vertices() < g.num_vertices());
        let mapping = r.vertex_mapping.expect("collapse relabels");
        // Mapping must be total and within bounds.
        for m in &mapping {
            let id = m.expect("collapse never removes vertices outright");
            assert!((id as usize) < r.graph.num_vertices());
        }
    }

    #[test]
    fn collapse_preserves_connectivity() {
        let g = triangle_rich();
        let before = connected_components(&g).num_components;
        let r = triangle_collapse(&g, 0.5, 17);
        let after = connected_components(&r.graph).num_components;
        // Contraction can only merge components' vertices, never split.
        assert!(after <= before);
        // Vertices drop but components of the *collapsed* graph match the
        // originals (contraction is connectivity-preserving).
        assert_eq!(before - after, 0, "collapse changed component count");
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(TrConfig::plain_1(0.5).label(), "0.5-1-TR");
        assert_eq!(TrConfig::edge_once_1(0.5).label(), "EO-0.5-1-TR");
        assert_eq!(TrConfig::count_triangles(0.5).label(), "CT-0.5-1-TR");
    }

    #[test]
    fn deterministic() {
        let g = triangle_rich();
        let a = triangle_reduce(&g, TrConfig::edge_once_1(0.6), 18);
        let b = triangle_reduce(&g, TrConfig::edge_once_1(0.6), 18);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
    }

    use sg_graph::CsrGraph;
}
