//! The Slim Graph compression-scheme zoo (§4, Table 2).
//!
//! | Scheme | Kernel class | Preserves best |
//! |--------|--------------|----------------|
//! | [`uniform`] random uniform sampling | edge | triangle count |
//! | [`spectral`] spectral sparsification | edge | graph spectra |
//! | [`triangle_reduction`] Triangle Reduction family | triangle | several (CC, MST, matchings, …) |
//! | [`low_degree`] degree-≤1 vertex removal | vertex | betweenness centrality |
//! | [`spanner`] O(k)-spanners | subgraph | distances |
//! | [`summarization`] lossy ϵ-summaries (SWeG-style) | subgraph | common-neighbor counts |
//! | [`cut_sparsify`] Nagamochi–Ibaraki cut sparsifier (§4.6 extension) | edge | cut values ≤ k |

pub mod cut_sparsify;
pub mod low_degree;
pub mod spanner;
pub mod spectral;
pub mod summarization;
pub mod triangle_reduction;
pub mod uniform;

pub use cut_sparsify::{cut_sparsify, forest_indices, CutSparsifyKernel};
pub use low_degree::{remove_low_degree, LowDegreeKernel};
pub use spanner::{spanner, SpannerKernel};
pub use spectral::{spectral_sparsify, SpectralKernel, UpsilonVariant};
pub use summarization::{summarize, summarize_to_graph, SummarizationConfig, Summary};
pub use triangle_reduction::{
    ranked_triangle_edges, triangle_collapse, triangle_key, triangle_reduce, triangle_sampled,
    Discipline, EdgeChoice, TrConfig, TriangleReductionKernel,
};
pub use uniform::{uniform_sample, UniformKernel};
