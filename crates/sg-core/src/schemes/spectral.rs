//! Spectral sparsification (§4.2.1, Spielman–Teng-flavoured sampling \[148\]).
//!
//! Edge `{u, v}` *stays* with probability `p_{u,v} = min(1, Υ / min(d_u,
//! d_v))`, chosen so every vertex keeps edges w.h.p. — the property the
//! paper credits for spectral sparsifiers disconnecting graphs far less than
//! uniform sampling at equal budgets. Υ comes in the two variants Figure 6
//! compares: `Υ = p·log n` \[148\] and `Υ = p·(2m/n)` (average degree, \[82\]).
//! Survivors are reweighted by `1/p_{u,v}` to keep the Laplacian unbiased.

use crate::context::SgContext;
use crate::engine::{CompressionResult, Engine};
use crate::kernel::{EdgeDecision, EdgeKernel, EdgeView};
use sg_graph::{CsrGraph, Weight};

/// How the connectivity parameter Υ is derived (Figure 6's
/// `spectral-logn` vs `spectral-avgdeg`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpsilonVariant {
    /// `Υ = p · ln(n)` — the Spielman–Teng-style default.
    LogN,
    /// `Υ = p · (2m / n)` — proportional to the average degree.
    AvgDegree,
}

/// The `spectral_sparsify` kernel of Listing 1.
#[derive(Clone, Copy, Debug)]
pub struct SpectralKernel {
    /// Precomputed Υ (`SG.connectivity_spectral_parameter()`).
    pub upsilon: f64,
    /// Whether survivors are reweighted by `1/p_e` (weighted output graph).
    pub reweight: bool,
}

impl SpectralKernel {
    /// Builds the kernel for a graph, user parameter `p`, and Υ variant.
    pub fn for_graph(g: &CsrGraph, p: f64, variant: UpsilonVariant, reweight: bool) -> Self {
        assert!(p >= 0.0, "p must be non-negative");
        let n = g.num_vertices().max(2) as f64;
        let upsilon = match variant {
            UpsilonVariant::LogN => p * n.ln(),
            UpsilonVariant::AvgDegree => p * g.average_degree(),
        };
        Self { upsilon, reweight }
    }
}

impl EdgeKernel for SpectralKernel {
    fn process(&self, e: EdgeView, sg: &SgContext<'_>) -> EdgeDecision {
        let min_deg = e.deg_u.min(e.deg_v).max(1) as f64;
        let edge_stays = (self.upsilon / min_deg).min(1.0);
        if edge_stays < sg.rand_unit(e.id as u64, 0) {
            EdgeDecision::Delete
        } else if self.reweight {
            EdgeDecision::Reweight(e.weight * (1.0 / edge_stays) as Weight)
        } else {
            EdgeDecision::Keep
        }
    }
}

/// Convenience wrapper: spectral sparsification with parameter `p`.
pub fn spectral_sparsify(
    g: &CsrGraph,
    p: f64,
    variant: UpsilonVariant,
    reweight: bool,
    seed: u64,
) -> CompressionResult {
    let kernel = SpectralKernel::for_graph(g, p, variant, reweight);
    Engine::new(seed).run_edge_kernel(g, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_algos::cc::connected_components;
    use sg_graph::generators;

    #[test]
    fn huge_upsilon_keeps_everything() {
        let g = generators::erdos_renyi(200, 1000, 1);
        // Υ >= max degree -> every p_e = 1.
        let k = SpectralKernel { upsilon: 1e9, reweight: false };
        let r = Engine::new(2).run_edge_kernel(&g, &k);
        assert_eq!(r.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn high_degree_edges_removed_first() {
        // A hub-heavy graph: edges between two hubs should vanish more often
        // than edges to leaves (p_e = Υ/min(deg)).
        let g = generators::barabasi_albert(3000, 5, 3);
        let r = spectral_sparsify(&g, 0.5, UpsilonVariant::LogN, false, 4);
        // Average degree of surviving structure is flatter: max degree drops
        // by more than average degree does.
        let max_ratio = r.graph.max_degree() as f64 / g.max_degree() as f64;
        let avg_ratio = r.graph.average_degree() / g.average_degree();
        assert!(max_ratio < avg_ratio, "max {max_ratio} vs avg {avg_ratio}");
    }

    #[test]
    fn reweighting_is_inverse_probability() {
        let g = generators::complete(40); // uniform degrees: single p_e
        let n = 40f64;
        let p = 0.2;
        let r = spectral_sparsify(&g, p, UpsilonVariant::LogN, true, 5);
        assert!(r.graph.is_weighted());
        let expected_pe = (p * n.ln() / 39.0).min(1.0);
        for (e, _, _) in r.graph.edge_iter() {
            let w = r.graph.edge_weight(e) as f64;
            assert!((w - 1.0 / expected_pe).abs() < 1e-3, "weight {w}");
        }
        // Total weight should approximate the original edge count (unbiased
        // Laplacian estimate).
        let total = r.graph.total_weight();
        assert!((total - 780.0).abs() / 780.0 < 0.2, "total {total}");
    }

    #[test]
    fn disconnects_less_than_uniform_at_equal_budget() {
        // §7.2: "for a fixed p, [spectral sparsification] generates
        // significantly fewer components than [uniform sampling]".
        let g = generators::barabasi_albert(4000, 4, 6);
        let r_spec = spectral_sparsify(&g, 0.45, UpsilonVariant::LogN, false, 7);
        // Match the uniform removal rate to the spectral one.
        let removed = r_spec.edge_reduction();
        let r_uni = crate::schemes::uniform::uniform_sample(&g, removed, 8);
        let cc_spec = connected_components(&r_spec.graph).num_components;
        let cc_uni = connected_components(&r_uni.graph).num_components;
        assert!(cc_spec < cc_uni, "spectral {cc_spec} components vs uniform {cc_uni}");
    }

    #[test]
    fn avgdeg_variant_differs_from_logn() {
        let g = generators::rmat_graph500(12, 10, 9);
        let a = spectral_sparsify(&g, 0.5, UpsilonVariant::LogN, false, 10);
        let b = spectral_sparsify(&g, 0.5, UpsilonVariant::AvgDegree, false, 10);
        assert_ne!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn deterministic() {
        let g = generators::erdos_renyi(300, 1200, 11);
        let a = spectral_sparsify(&g, 0.3, UpsilonVariant::LogN, true, 12);
        let b = spectral_sparsify(&g, 0.3, UpsilonVariant::LogN, true, 12);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
    }
}
