//! O(k)-spanners via low-diameter decomposition (§4.5.3, Miller et al.
//! \[111\]).
//!
//! The runtime first constructs the §4.5.2 mapping with an LDD (`β`
//! decreasing in `k`; see [`crate::ldd::ldd_for_spanner`] for the
//! calibration), then executes the `derive_spanner` subgraph kernel on
//! every cluster: replace the cluster's edges by a BFS spanning tree and,
//! per vertex, keep one edge to each neighbouring cluster. Larger `k`
//! produces larger clusters, hence fewer surviving edges — the
//! `O(n^{1+1/k})` edge bound — at the cost of `O(k)`-class distance
//! stretch.

use crate::context::SgContext;
use crate::engine::{CompressionResult, Engine};
use crate::kernel::{SubgraphKernel, SubgraphView};
use crate::ldd::ldd_for_spanner;
use rustc_hash::FxHashMap;
use sg_algos::spanning::cluster_spanning_tree_by;
use sg_graph::{CsrGraph, EdgeId};

/// The `derive_spanner` kernel of Listing 1.
///
/// Deletion-based: the kernel deletes (a) intra-cluster non-tree edges and
/// (b) per member vertex, all but one edge to each neighbouring cluster.
/// Instances never race: each instance only deletes edges incident to its
/// own members, and cross-cluster deletions compose (an edge survives iff
/// neither side prunes it — see `process` for why connectivity holds).
pub struct SpannerKernel<'a> {
    /// The shared vertex→cluster assignment (the §4.5.2 mapping); used for
    /// O(1) membership tests instead of per-instance O(n) bitmaps.
    pub assignment: &'a [u32],
}

impl SubgraphKernel for SpannerKernel<'_> {
    fn process(&self, sgv: SubgraphView<'_>, sg: &SgContext<'_>) {
        let g = sg.graph.csr();
        let my = sgv.cluster_id as u32;

        // (a) Replace "subgraph" with a spanning tree: delete intra-cluster
        // edges that are not part of the BFS tree.
        let (tree_edges, _depth) =
            cluster_spanning_tree_by(g, sgv.members, |u| self.assignment[u as usize] == my);
        let tree: rustc_hash::FxHashSet<EdgeId> = tree_edges.into_iter().collect();
        for &v in sgv.members {
            let row = g.neighbors(v);
            let eids = g.neighbor_edge_ids(v);
            for (i, &u) in row.iter().enumerate() {
                if self.assignment[u as usize] == my && u > v && !tree.contains(&eids[i]) {
                    sg.del_edge(eids[i]);
                }
            }
        }

        // (b) Per vertex, keep one edge to each neighbouring cluster
        // (Miller et al.'s construction: "for each vertex v in C connected
        // to another subgraph with edges e1..el, only one of these is
        // added"). Each side of an inter-cluster edge prunes independently,
        // so an edge survives iff it is the minimum-id representative for
        // *both* endpoints; the globally minimal edge of every cluster pair
        // satisfies this, preserving inter-cluster connectivity while
        // retaining the O(n^{1+1/k}) per-vertex granularity the paper's
        // edge counts reflect.
        let mut chosen: FxHashMap<u32, EdgeId> = FxHashMap::default();
        for &v in sgv.members {
            let row = g.neighbors(v);
            let eids = g.neighbor_edge_ids(v);
            chosen.clear();
            for (i, &u) in row.iter().enumerate() {
                let other = self.assignment[u as usize];
                if other != my {
                    let entry = chosen.entry(other).or_insert(eids[i]);
                    if eids[i] < *entry {
                        *entry = eids[i];
                    }
                }
            }
            for (i, &u) in row.iter().enumerate() {
                let other = self.assignment[u as usize];
                if other != my && chosen[&other] != eids[i] {
                    sg.del_edge(eids[i]);
                }
            }
        }
    }
}

/// Derives an O(k)-spanner of `g`.
pub fn spanner(g: &CsrGraph, k: f64, seed: u64) -> CompressionResult {
    assert!(k >= 1.0, "spanner parameter k must be >= 1");
    let start = std::time::Instant::now();
    let mapping = ldd_for_spanner(g, k, seed);
    let kernel = SpannerKernel { assignment: &mapping.assignment };
    let mut result = Engine::new(seed).run_subgraph_kernel(g, &mapping, &kernel);
    // Fold the mapping-construction time into the reported compression time
    // (the paper attributes LDD overhead to the spanner scheme: "spanners
    // are >20% slower due to overheads from low-diameter decomposition").
    result.elapsed = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_algos::cc::connected_components;
    use sg_algos::sssp::dijkstra;
    use sg_graph::generators;

    #[test]
    fn spanner_preserves_connectivity() {
        let g = generators::rmat_graph500(11, 8, 1);
        for k in [2.0, 8.0, 32.0] {
            let r = spanner(&g, k, 2);
            let before = connected_components(&g).num_components;
            let after = connected_components(&r.graph).num_components;
            assert_eq!(before, after, "k = {k} disconnected the graph");
        }
    }

    #[test]
    fn larger_k_removes_more_edges() {
        let g = generators::rmat_graph500(12, 10, 3);
        let r2 = spanner(&g, 2.0, 4);
        let r32 = spanner(&g, 32.0, 4);
        let r128 = spanner(&g, 128.0, 4);
        assert!(r2.graph.num_edges() >= r32.graph.num_edges());
        assert!(r32.graph.num_edges() >= r128.graph.num_edges());
        assert!(r128.edge_reduction() > 0.3, "k=128 should compress strongly");
    }

    #[test]
    fn extreme_k_leaves_close_to_spanning_forest() {
        let g = generators::erdos_renyi(2000, 16_000, 5);
        let r = spanner(&g, 1_000.0, 6);
        // With one giant cluster the spanner degenerates to ~a spanning
        // forest: n - c edges plus few inter-cluster survivors.
        let cc = connected_components(&g).num_components;
        let forest = g.num_vertices() - cc;
        assert!(r.graph.num_edges() <= forest + forest / 2, "m' = {}", r.graph.num_edges());
    }

    #[test]
    fn distances_bounded_by_stretch() {
        let g = generators::watts_strogatz(400, 4, 0.2, 7);
        let k = 4.0;
        let r = spanner(&g, k, 8);
        let before = dijkstra(&g, 0);
        let after = dijkstra(&r.graph, 0);
        // Spanner guarantee: distances grow by a bounded multiplicative
        // factor. Cluster diameter is O(k log n); assert a generous bound to
        // keep the test robust across seeds.
        let bound = 2.0 * k * (400f64).ln();
        for (b, a) in before.iter().zip(&after) {
            if b.is_finite() && *b > 0.0 {
                assert!(a.is_finite(), "spanner disconnected a vertex");
                assert!(*a / *b <= bound, "stretch {} too large", a / b);
            }
        }
    }

    #[test]
    fn spanner_kills_most_triangles() {
        // Table 6: spanners, especially for large k, eliminate most
        // triangles (clusters become trees).
        let g = generators::planted_triangles(&generators::erdos_renyi(1000, 2000, 9), 2000, 10);
        let t0 = sg_algos::tc::count_triangles(&g);
        let r = spanner(&g, 32.0, 11);
        let t1 = sg_algos::tc::count_triangles(&r.graph);
        assert!(t1 < t0 / 10, "triangles {t0} -> {t1}");
    }

    #[test]
    fn deterministic() {
        let g = generators::erdos_renyi(500, 2500, 12);
        let a = spanner(&g, 8.0, 13);
        let b = spanner(&g, 8.0, 13);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
    }
}
