//! Lossy ϵ-summarization (§4.5.4) — a SWeG-style scheme \[141\].
//!
//! Vertices are merged into *supervertices* by generalized Jaccard
//! similarity (minhash-grouped, with the SWeG threshold schedule
//! `θ(t) = 1/(1+t)`); dense inter-supervertex edge groups become
//! *superedges*. Exactness is retained through two correction sets: edges a
//! superedge over-covers (`corrections_minus`) and edges no superedge covers
//! (`corrections_plus`) — Listing 1's `derive_summary` kernel state. The
//! lossy knob ϵ drops up to `ϵ·m` corrections from each set, bounding the
//! symmetric difference of the reconstruction by `2ϵm` (Table 3's
//! `m ± 2ϵm` row).

use crate::engine::CompressionResult;
use rustc_hash::{FxHashMap, FxHashSet};
use sg_graph::prng::mix64;
use sg_graph::{CsrGraph, EdgeList, VertexId};
use std::time::Instant;

/// Configuration for ϵ-summarization.
#[derive(Clone, Copy, Debug)]
pub struct SummarizationConfig {
    /// Error knob: up to `ϵ·m` corrections dropped from each correction set.
    pub epsilon: f64,
    /// Maximum merge iterations (SWeG uses tens; clusters converge fast at
    /// our scales).
    pub max_iterations: usize,
    /// Seed for minhash grouping and correction dropping.
    pub seed: u64,
}

impl Default for SummarizationConfig {
    fn default() -> Self {
        Self { epsilon: 0.0, max_iterations: 10, seed: 0 }
    }
}

/// A graph summary: supervertices + superedges + corrections.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Supervertex id per original vertex.
    pub supervertex_of: Vec<u32>,
    /// Member lists per supervertex.
    pub supervertices: Vec<Vec<VertexId>>,
    /// Superedges `(a, b)` with `a <= b`; `a == b` encodes an internal
    /// near-clique.
    pub superedges: Vec<(u32, u32)>,
    /// Edges that exist but are not covered by any superedge.
    pub corrections_plus: Vec<(VertexId, VertexId)>,
    /// Non-edges covered by a superedge (to delete on decompression).
    pub corrections_minus: Vec<(VertexId, VertexId)>,
    /// Corrections irreversibly dropped by the ϵ knob.
    pub dropped_plus: usize,
    /// Dropped minus-corrections.
    pub dropped_minus: usize,
    /// Merge iterations executed.
    pub iterations: usize,
    original_vertices: usize,
    original_edges: usize,
}

impl Summary {
    /// Storage cost in "edge units": superedges plus retained corrections
    /// (what the summary actually stores).
    pub fn storage_cost(&self) -> usize {
        self.superedges.len() + self.corrections_plus.len() + self.corrections_minus.len()
    }

    /// Number of supervertices.
    pub fn num_supervertices(&self) -> usize {
        self.supervertices.len()
    }

    /// Reconstructs the (approximate) graph the summary encodes. With
    /// `ϵ = 0` this is exactly the input graph.
    pub fn decompress(&self) -> CsrGraph {
        let mut edges: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        for &(a, b) in &self.superedges {
            let ma = &self.supervertices[a as usize];
            let mb = &self.supervertices[b as usize];
            if a == b {
                for i in 0..ma.len() {
                    for j in (i + 1)..ma.len() {
                        edges.insert(ordered(ma[i], ma[j]));
                    }
                }
            } else {
                for &u in ma {
                    for &v in mb {
                        edges.insert(ordered(u, v));
                    }
                }
            }
        }
        for &(u, v) in &self.corrections_minus {
            edges.remove(&ordered(u, v));
        }
        for &(u, v) in &self.corrections_plus {
            edges.insert(ordered(u, v));
        }
        let mut list: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        list.sort_unstable();
        CsrGraph::from_edge_list(EdgeList {
            num_vertices: self.original_vertices,
            edges: list,
            weights: None,
        })
    }

    /// Symmetric difference between the reconstruction and `original`
    /// (the accuracy the ϵ bound guards).
    pub fn reconstruction_error(&self, original: &CsrGraph) -> usize {
        let recon = self.decompress();
        let a: FxHashSet<(VertexId, VertexId)> = original.edge_slice().iter().copied().collect();
        let b: FxHashSet<(VertexId, VertexId)> = recon.edge_slice().iter().copied().collect();
        a.symmetric_difference(&b).count()
    }

    /// Edge count of the input graph.
    pub fn original_edges(&self) -> usize {
        self.original_edges
    }
}

#[inline]
fn ordered(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Jaccard similarity of two sorted vertex sets.
fn jaccard_sorted(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

fn merge_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            if j < b.len() && i < a.len() && a[i] == b[j] {
                j += 1;
            }
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

/// Builds a summary of `g` (the convergence loop of Listing 2: construct
/// mapping, run kernels, repeat until converged).
pub fn summarize(g: &CsrGraph, cfg: SummarizationConfig) -> Summary {
    assert!(cfg.epsilon >= 0.0, "epsilon must be non-negative");
    let n = g.num_vertices();
    let m = g.num_edges();

    // --- Merge phase -----------------------------------------------------
    // Supervertex state: representative id per vertex + neighborhood sets.
    let mut sv_of: Vec<u32> = (0..n as u32).collect();
    let mut members: FxHashMap<u32, Vec<VertexId>> =
        (0..n as u32).map(|v| (v, vec![v as VertexId])).collect();
    let mut neigh: FxHashMap<u32, Vec<VertexId>> =
        (0..n as u32).map(|v| (v, g.neighbors(v as VertexId).to_vec())).collect();

    let mut iterations = 0;
    for t in 0..cfg.max_iterations {
        iterations = t + 1;
        let threshold = 1.0 / (1.0 + t as f64); // SWeG schedule
                                                // Group current supervertices by a minhash of their neighborhoods.
        let mut groups: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut sv_ids: Vec<u32> = members.keys().copied().collect();
        sv_ids.sort_unstable();
        for &s in &sv_ids {
            let h = neigh[&s]
                .iter()
                .map(|&u| mix64(cfg.seed ^ (t as u64) << 32 ^ u as u64))
                .min()
                .unwrap_or(mix64(cfg.seed ^ s as u64));
            groups.entry(h).or_default().push(s);
        }
        let mut merges = 0usize;
        let mut keys: Vec<u64> = groups.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let group = &groups[&key];
            if group.len() < 2 {
                continue;
            }
            let rep = group[0];
            for &s in &group[1..] {
                if !members.contains_key(&rep) || !members.contains_key(&s) {
                    continue;
                }
                if jaccard_sorted(&neigh[&rep], &neigh[&s]) >= threshold {
                    // Merge s into rep.
                    let moved = members.remove(&s).expect("present");
                    for &v in &moved {
                        sv_of[v as usize] = rep;
                    }
                    members.get_mut(&rep).expect("present").extend(moved);
                    let ns = neigh.remove(&s).expect("present");
                    let merged = merge_sorted(&neigh[&rep], &ns);
                    neigh.insert(rep, merged);
                    merges += 1;
                }
            }
        }
        if merges == 0 {
            break;
        }
    }

    // Densify supervertex ids.
    let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
    let mut reps: Vec<u32> = members.keys().copied().collect();
    reps.sort_unstable();
    for (i, &r) in reps.iter().enumerate() {
        dense.insert(r, i as u32);
    }
    let supervertex_of: Vec<u32> = sv_of.iter().map(|r| dense[r]).collect();
    let mut supervertices: Vec<Vec<VertexId>> = vec![Vec::new(); reps.len()];
    for (v, &s) in supervertex_of.iter().enumerate() {
        supervertices[s as usize].push(v as VertexId);
    }

    // --- Encoding phase (the derive_summary kernel per cluster pair) ------
    let mut pair_edges: FxHashMap<(u32, u32), Vec<(VertexId, VertexId)>> = FxHashMap::default();
    for (_, u, v) in g.edge_iter() {
        let (a, b) = {
            let (sa, sb) = (supervertex_of[u as usize], supervertex_of[v as usize]);
            if sa <= sb {
                (sa, sb)
            } else {
                (sb, sa)
            }
        };
        pair_edges.entry((a, b)).or_default().push(ordered(u, v));
    }
    // Per-pair encoding decision, kept grouped so the lossy phase can drop
    // whole superedge groups.
    struct PairCode {
        pair: (u32, u32),
        /// Edges the pair actually contains.
        present: Vec<(VertexId, VertexId)>,
        /// Missing pairs the superedge over-covers (None = sparse group).
        minus: Option<Vec<(VertexId, VertexId)>>,
    }
    let mut codes: Vec<PairCode> = Vec::new();
    let mut corrections_plus = Vec::new();
    let mut pairs: Vec<(u32, u32)> = pair_edges.keys().copied().collect();
    pairs.sort_unstable();
    for (a, b) in pairs {
        let present: &Vec<(VertexId, VertexId)> = &pair_edges[&(a, b)];
        let (ma, mb) = (&supervertices[a as usize], &supervertices[b as usize]);
        let potential = if a == b { ma.len() * (ma.len() - 1) / 2 } else { ma.len() * mb.len() };
        if 2 * present.len() > potential {
            // Dense: superedge + minus-corrections for the missing pairs
            // (SG.superedge returning (se, inter)).
            let have: FxHashSet<(VertexId, VertexId)> = present.iter().copied().collect();
            let mut minus = Vec::with_capacity(potential - present.len());
            if a == b {
                for i in 0..ma.len() {
                    for j in (i + 1)..ma.len() {
                        let p = ordered(ma[i], ma[j]);
                        if !have.contains(&p) {
                            minus.push(p);
                        }
                    }
                }
            } else {
                for &u in ma {
                    for &v in mb {
                        let p = ordered(u, v);
                        if !have.contains(&p) {
                            minus.push(p);
                        }
                    }
                }
            }
            codes.push(PairCode { pair: (a, b), present: present.clone(), minus: Some(minus) });
        } else {
            // Sparse: keep the edges themselves (corrections_plus).
            corrections_plus.extend_from_slice(present);
        }
    }

    // --- Lossy drop (the ϵ knob) ------------------------------------------
    // Two mechanisms, matching §4.5.4: (a) `summary_select` drops
    // intra/inter correction entries, and (b) `SG.superedge` drops sampled
    // edge groups outright. Each consumes an ϵ·m edge-loss budget, keeping
    // the reconstruction's symmetric difference within 2ϵm (Table 3).
    let budget = (cfg.epsilon * m as f64).floor() as usize;
    let dropped_plus = drop_corrections(&mut corrections_plus, budget, cfg.seed ^ 0x9);
    // (b): drop whole sampled superedge groups, smallest first, while the
    // remaining plus-budget allows (losing `present` edges per group).
    let mut superedge_budget = budget - dropped_plus;
    if superedge_budget > 0 {
        codes.sort_by_key(|c| {
            (c.present.len(), mix64(cfg.seed ^ 0xB ^ ((c.pair.0 as u64) << 32 | c.pair.1 as u64)))
        });
        codes.retain(|c| {
            if superedge_budget >= c.present.len() && !c.present.is_empty() {
                superedge_budget -= c.present.len();
                false // drop the group: edges lost, corrections freed
            } else {
                true
            }
        });
        codes.sort_by_key(|c| c.pair);
    }
    let dropped_plus = dropped_plus + (budget - dropped_plus - superedge_budget);
    let superedges: Vec<(u32, u32)> = codes.iter().map(|c| c.pair).collect();
    let mut corrections_minus: Vec<(VertexId, VertexId)> =
        codes.iter_mut().flat_map(|c| c.minus.take().unwrap_or_default()).collect();
    corrections_minus.sort_unstable();
    let dropped_minus = drop_corrections(&mut corrections_minus, budget, cfg.seed ^ 0xA);

    Summary {
        supervertex_of,
        supervertices,
        superedges,
        corrections_plus,
        corrections_minus,
        dropped_plus,
        dropped_minus,
        iterations,
        original_vertices: n,
        original_edges: m,
    }
}

/// Drops up to `budget` corrections pseudo-randomly (deterministic per
/// seed); returns the number dropped.
fn drop_corrections(
    corrections: &mut Vec<(VertexId, VertexId)>,
    budget: usize,
    seed: u64,
) -> usize {
    if budget == 0 || corrections.is_empty() {
        return 0;
    }
    let drop = budget.min(corrections.len());
    // Deterministic random order, then truncate the victims.
    corrections.sort_unstable_by_key(|&(u, v)| mix64(seed ^ ((u as u64) << 32 | v as u64)));
    corrections.drain(0..drop);
    corrections.sort_unstable();
    drop
}

/// Runs summarization and reconstructs the approximate graph so downstream
/// algorithms can run on it (what stage 2 measures).
pub fn summarize_to_graph(g: &CsrGraph, cfg: SummarizationConfig) -> (Summary, CompressionResult) {
    let start = Instant::now();
    let summary = summarize(g, cfg);
    let graph = summary.decompress();
    let result = CompressionResult {
        graph,
        original_edges: g.num_edges(),
        original_vertices: g.num_vertices(),
        elapsed: start.elapsed(),
        vertex_mapping: None,
    };
    (summary, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    fn cfg(eps: f64, seed: u64) -> SummarizationConfig {
        SummarizationConfig { epsilon: eps, max_iterations: 8, seed }
    }

    #[test]
    fn lossless_roundtrip() {
        // ϵ = 0: the summary must reconstruct the exact input graph.
        for seed in [1, 2] {
            let g = generators::barabasi_albert(400, 4, seed);
            let s = summarize(&g, cfg(0.0, seed));
            let recon = s.decompress();
            assert_eq!(recon.edge_slice(), g.edge_slice(), "seed {seed}");
            assert_eq!(s.reconstruction_error(&g), 0);
        }
    }

    #[test]
    fn twins_merge_into_supervertex() {
        // Two vertices with identical neighborhoods must land in one
        // supervertex at threshold 1.0 (iteration 0).
        let mut edges = Vec::new();
        for hub in 2..8u32 {
            edges.push((0, hub));
            edges.push((1, hub));
        }
        let g = CsrGraph::from_pairs(8, &edges);
        let s = summarize(&g, cfg(0.0, 3));
        assert_eq!(s.supervertex_of[0], s.supervertex_of[1]);
        assert!(s.num_supervertices() < 8);
    }

    #[test]
    fn epsilon_bounds_symmetric_difference() {
        // Table 3: lossy ϵ-summary has m ± 2ϵm edges; symmetric difference
        // of the reconstruction is at most 2ϵm.
        let g = generators::watts_strogatz(500, 5, 0.05, 4);
        let m = g.num_edges() as f64;
        for eps in [0.01, 0.05, 0.1] {
            let s = summarize(&g, cfg(eps, 5));
            let err = s.reconstruction_error(&g) as f64;
            assert!(err <= 2.0 * eps * m + 1e-9, "eps {eps}: err {err} > {}", 2.0 * eps * m);
        }
    }

    #[test]
    fn higher_epsilon_drops_more() {
        let g = generators::barabasi_albert(600, 5, 6);
        let lo = summarize(&g, cfg(0.02, 7));
        let hi = summarize(&g, cfg(0.2, 7));
        assert!(hi.dropped_plus + hi.dropped_minus >= lo.dropped_plus + lo.dropped_minus);
    }

    #[test]
    fn storage_cost_reported() {
        let g = generators::barabasi_albert(300, 3, 8);
        let s = summarize(&g, cfg(0.0, 9));
        assert!(s.storage_cost() > 0);
        // Lossless storage never needs more than m + superedges units.
        assert!(s.corrections_plus.len() <= g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_pairs(0, &[]);
        let s = summarize(&g, cfg(0.1, 10));
        assert_eq!(s.num_supervertices(), 0);
        assert_eq!(s.decompress().num_edges(), 0);
    }

    #[test]
    fn summarize_to_graph_reports_sizes() {
        let g = generators::barabasi_albert(300, 4, 11);
        let (s, r) = summarize_to_graph(&g, cfg(0.1, 12));
        assert_eq!(r.original_edges, g.num_edges());
        // Reconstruction within the ±2ϵm band.
        let band = 2.0 * 0.1 * g.num_edges() as f64;
        let diff = (r.graph.num_edges() as f64 - g.num_edges() as f64).abs();
        assert!(diff <= band + 1e-9, "diff {diff} band {band}");
        assert!(s.iterations >= 1);
    }

    #[test]
    fn deterministic() {
        let g = generators::barabasi_albert(300, 3, 13);
        let a = summarize(&g, cfg(0.05, 14));
        let b = summarize(&g, cfg(0.05, 14));
        assert_eq!(a.decompress().edge_slice(), b.decompress().edge_slice());
    }

    use sg_graph::CsrGraph;
}
