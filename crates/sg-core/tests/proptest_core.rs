//! Property-based tests for sg-core's shared state: the atomic bitset, the
//! SG context, mappings, and the low-diameter decomposition.

use proptest::prelude::*;
use sg_core::atomic_bitset::AtomicBitset;
use sg_core::ldd::low_diameter_decomposition;
use sg_core::mapping::VertexMapping;
use sg_core::SgContext;
use sg_graph::generators;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bitset is a faithful set: after a sequence of sets/clears, its
    /// contents equal a model HashSet.
    #[test]
    fn bitset_matches_model(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..100)) {
        let bs = AtomicBitset::new(200);
        let mut model = std::collections::HashSet::new();
        for (i, set) in ops {
            if set {
                bs.set(i);
                model.insert(i);
            } else {
                bs.clear(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(bs.count_ones(), model.len());
        for i in 0..200 {
            prop_assert_eq!(bs.get(i), model.contains(&i));
        }
    }

    /// SG randomness: per-element values are deterministic, independent of
    /// each other's query order, and uniform-ish.
    #[test]
    fn context_rand_deterministic(seed in 0u64..1000) {
        let g = generators::cycle(16);
        let sg = SgContext::new(&g, seed);
        let forward: Vec<f64> = (0..64).map(|e| sg.rand_unit(e, 0)).collect();
        let backward: Vec<f64> = (0..64).rev().map(|e| sg.rand_unit(e, 0)).collect();
        let backward: Vec<f64> = backward.into_iter().rev().collect();
        prop_assert_eq!(forward, backward);
    }

    /// Mappings built from arbitrary labels are valid partitions.
    #[test]
    fn mapping_from_labels_is_partition(labels in proptest::collection::vec(0u32..20, 1..200)) {
        let m = VertexMapping::from_labels(&labels);
        prop_assert!(m.validate());
        let total: usize = m.clusters.iter().map(Vec::len).sum();
        prop_assert_eq!(total, labels.len());
        // Same label -> same cluster; different label -> different cluster.
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                prop_assert_eq!(
                    labels[i] == labels[j],
                    m.assignment[i] == m.assignment[j]
                );
            }
        }
    }

    /// LDD always yields a valid partition into connected clusters, for any
    /// beta and seed.
    #[test]
    fn ldd_partitions_connectedly(
        n in 20usize..120,
        m_factor in 1usize..5,
        beta in 0.05f64..4.0,
        seed in 0u64..100,
    ) {
        let g = generators::erdos_renyi(n, m_factor * n, seed);
        let mapping = low_diameter_decomposition(&g, beta, seed ^ 1);
        prop_assert!(mapping.validate());
        for members in &mapping.clusters {
            let cid = mapping.assignment[members[0] as usize];
            let (tree, _) = sg_algos::spanning::cluster_spanning_tree_by(&g, members, |v| {
                mapping.assignment[v as usize] == cid
            });
            prop_assert_eq!(tree.len(), members.len() - 1, "cluster disconnected");
        }
    }

    /// Edge-Once consideration is first-wins exactly once per edge even
    /// under concurrency.
    #[test]
    fn consider_once_is_exclusive(seed in 0u64..50) {
        use rayon::prelude::*;
        let g = generators::erdos_renyi(100, 400, seed);
        let sg = SgContext::new(&g, seed);
        let winners: usize = (0..8u32)
            .into_par_iter()
            .map(|_| {
                (0..g.num_edges() as u32)
                    .filter(|&e| sg.consider_edge_once(e))
                    .count()
            })
            .sum();
        prop_assert_eq!(winners, g.num_edges());
    }
}
