//! Criterion benchmarks for the compression routines (§7.4 timing).
//!
//! One benchmark group per scheme; the expected ordering is
//! sampling <= spectral < spanner < TR < summarization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_core::schemes::{TrConfig, UpsilonVariant};
use sg_core::Scheme;
use sg_graph::generators;
use sg_graph::CsrGraph;
use std::hint::black_box;

fn workload() -> CsrGraph {
    generators::planted_triangles(&generators::rmat_graph500(12, 8, 7), 10_000, 8)
}

fn bench_schemes(c: &mut Criterion) {
    let g = workload();
    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    let schemes = [
        ("uniform", Scheme::Uniform { p: 0.5 }),
        (
            "spectral",
            Scheme::Spectral { p: 0.5, variant: UpsilonVariant::LogN, reweight: false },
        ),
        ("spanner_k8", Scheme::Spanner { k: 8.0 }),
        ("tr_plain", Scheme::TriangleReduction(TrConfig::plain_1(0.5))),
        ("tr_eo", Scheme::TriangleReduction(TrConfig::edge_once_1(0.5))),
        ("summarization", Scheme::Summarization { epsilon: 0.1 }),
    ];
    for (name, scheme) in schemes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            b.iter(|| black_box(s.apply(&g, 42)));
        });
    }
    group.finish();
}

fn bench_materialization(c: &mut Criterion) {
    let g = workload();
    c.bench_function("filter_edges_half", |b| {
        b.iter(|| black_box(g.filter_edges(|e| e % 2 == 0)));
    });
}

criterion_group!(benches, bench_schemes, bench_materialization);
criterion_main!(benches);
