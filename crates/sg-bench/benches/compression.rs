//! Criterion benchmarks for the compression routines (§7.4 timing).
//!
//! One benchmark group per scheme; the expected ordering is
//! sampling <= spectral < spanner < TR < summarization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::scheme;
use sg_core::{CompressionScheme, SchemeRegistry};
use sg_graph::generators;
use sg_graph::CsrGraph;
use std::hint::black_box;

fn workload() -> CsrGraph {
    generators::planted_triangles(&generators::rmat_graph500(12, 8, 7), 10_000, 8)
}

fn bench_schemes(c: &mut Criterion) {
    let g = workload();
    let registry = SchemeRegistry::with_defaults();
    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    let schemes: [(&str, Box<dyn CompressionScheme>); 6] = [
        ("uniform", scheme(&registry, "uniform", &[("p", "0.5")])),
        ("spectral", scheme(&registry, "spectral", &[("p", "0.5")])),
        ("spanner_k8", scheme(&registry, "spanner", &[("k", "8")])),
        ("tr_plain", scheme(&registry, "tr", &[("p", "0.5")])),
        ("tr_eo", scheme(&registry, "tr-eo", &[("p", "0.5")])),
        ("summarization", scheme(&registry, "summary", &[("epsilon", "0.1")])),
    ];
    for (name, scheme) in &schemes {
        group.bench_with_input(BenchmarkId::from_parameter(name), scheme, |b, s| {
            b.iter(|| black_box(s.apply(&g, 42)));
        });
    }
    group.finish();
}

fn bench_materialization(c: &mut Criterion) {
    let g = workload();
    c.bench_function("filter_edges_half", |b| {
        b.iter(|| black_box(g.filter_edges(|e| e % 2 == 0)));
    });
}

criterion_group!(benches, bench_schemes, bench_materialization);
criterion_main!(benches);
