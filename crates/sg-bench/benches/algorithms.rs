//! Criterion benchmarks for stage-2 algorithms on original vs compressed
//! graphs — the microbenchmark behind Figure 5's runtime columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_algos::{bfs, cc, pagerank, tc};
use sg_core::CompressionScheme;
use sg_graph::generators;
use sg_graph::CsrGraph;
use std::hint::black_box;

fn workload() -> CsrGraph {
    generators::rmat_graph500(13, 10, 3)
}

fn bench_algorithms(c: &mut Criterion) {
    let g = workload();
    let compressed = sg_core::scheme::Uniform { p: 0.5 }.apply(&g, 9).graph;
    let mut group = c.benchmark_group("stage2");
    group.sample_size(10);
    for (label, graph) in [("original", &g), ("uniform_p0.5", &compressed)] {
        group.bench_with_input(BenchmarkId::new("bfs", label), graph, |b, g| {
            b.iter(|| black_box(bfs::bfs_parallel(g, 0)));
        });
        group.bench_with_input(BenchmarkId::new("cc", label), graph, |b, g| {
            b.iter(|| black_box(cc::connected_components(g)));
        });
        group.bench_with_input(BenchmarkId::new("pagerank", label), graph, |b, g| {
            b.iter(|| {
                black_box(pagerank::pagerank(
                    g,
                    pagerank::PageRankConfig { max_iterations: 10, ..Default::default() },
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("tc", label), graph, |b, g| {
            b.iter(|| black_box(tc::count_triangles(g)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
