//! E5 — Figure 7: impact of spanners on degree distributions.
//!
//! For twitter-, friendster- and .it-domains-like graphs, compares the
//! degree distribution before compression and under spanners with k ∈
//! {2, 32}. Expected shape: spanners "strengthen the power law" — the
//! log–log fit's R² increases with k while max degree shrinks.
//!
//! Run: `cargo run --release -p sg-bench --bin fig7_spanner_degrees`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::schemes::spanner;
use sg_graph::generators::presets;
use sg_graph::properties::DegreeDistribution;
use sg_graph::CsrGraph;
use sg_metrics::compare_degree_distributions;

fn describe(name: &str, variant: &str, g: &CsrGraph) -> Vec<String> {
    let dist = DegreeDistribution::of(g);
    let fit = dist.power_law_fit();
    vec![
        name.to_string(),
        variant.to_string(),
        g.num_edges().to_string(),
        g.max_degree().to_string(),
        dist.support_size().to_string(),
        fit.map_or("-".into(), |f| format!("{:.2}", f.exponent)),
        fit.map_or("-".into(), |f| format!("{:.3}", f.r2)),
    ]
}

fn main() {
    let json = json_requested();
    let seed = 0xF17;
    if !json {
        println!("== Figure 7: spanner impact on degree distributions ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in presets::fig7_suite() {
        rows.push(describe(name, "original", &g));
        for k in [2.0, 32.0] {
            let r = spanner(&g, k, seed);
            rows.push(describe(name, &format!("spanner k={k}"), &r.graph));
            let cmp = compare_degree_distributions(&g, &r.graph);
            let fmt_opt = |x: Option<f64>| x.map_or("null".to_string(), |v| format!("{v:.4}"));
            records.push(BenchRecord {
                workload: name.to_string(),
                label: format!("spanner (k={k})"),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("degree_l1".into(), format!("{:.4}", cmp.l1_distance)),
                    ("support_before".into(), cmp.support_before.to_string()),
                    ("support_after".into(), cmp.support_after.to_string()),
                    ("pl_r2_before".into(), fmt_opt(cmp.r2_before)),
                    ("pl_r2_after".into(), fmt_opt(cmp.r2_after)),
                ],
                ratio: Some(r.compression_ratio()),
                timings_ms: Vec::new(),
            });
            eprintln!(
                "{name} k={k}: L1 distance {:.3}, R2 {:?} -> {:?}",
                cmp.l1_distance, cmp.r2_before, cmp.r2_after
            );
        }
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(&["graph", "variant", "m", "max_deg", "#degrees", "pl_exp", "pl_R2"], &rows)
    );
    println!("(pl_R2 closer to 1 under larger k = the power law 'strengthens', Fig. 7)");

    // Emit the raw series for one graph so the figure itself can be re-plotted.
    let g = presets::m_twt_like();
    println!("\n# degree distribution series (m-twt-like): degree fraction_original fraction_k2 fraction_k32");
    let orig = DegreeDistribution::of(&g);
    let k2 = DegreeDistribution::of(&spanner(&g, 2.0, seed).graph);
    let k32 = DegreeDistribution::of(&spanner(&g, 32.0, seed).graph);
    let lookup = |d: &DegreeDistribution, deg: usize| -> f64 {
        d.fractions().iter().find(|&&(x, _)| x == deg).map_or(0.0, |&(_, f)| f)
    };
    for &(deg, _) in orig.entries.iter().take(40) {
        println!(
            "{deg} {:.6} {:.6} {:.6}",
            lookup(&orig, deg),
            lookup(&k2, deg),
            lookup(&k32, deg)
        );
    }
}
