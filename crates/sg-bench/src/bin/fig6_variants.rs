//! E2 — Figure 6: compression-ratio analysis of scheme *variants*.
//!
//! Left panel: spectral sparsification with Υ proportional to the average
//! degree vs to log(n), across a suite of graphs of different classes.
//! Right panel: plain vs CT vs EO Triangle 0.5-1-Reduction.
//!
//! Run: `cargo run --release -p sg-bench --bin fig6_variants`

use sg_bench::{f3, json_requested, render_json, render_table, BenchRecord};
use sg_core::schemes::{spectral_sparsify, triangle_reduce, TrConfig, UpsilonVariant};
use sg_graph::generators::presets;

fn main() {
    let json = json_requested();
    let seed = 0xF16;
    let mut records = Vec::new();
    if !json {
        println!("== Figure 6 (left): spectral sparsification variants, p = 0.5 ==\n");
    }
    let graphs = [
        "h-dbp",
        "h-dit",
        "h-hud",
        "l-cit",
        "m-twt",
        "s-frs",
        "s-lib",
        "s-ljn-sub",
        "s-ork-sub",
        "v-skt",
    ];
    let mut rows = Vec::new();
    for name in graphs {
        // Two suite entries are aliases at our scale.
        let g = match name {
            "s-ljn-sub" => presets::s_you_like(),
            "s-ork-sub" => presets::s_pok_like(),
            other => presets::by_name(other).expect("preset exists"),
        };
        let avg = spectral_sparsify(&g, 0.5, UpsilonVariant::AvgDegree, false, seed);
        let logn = spectral_sparsify(&g, 0.5, UpsilonVariant::LogN, false, seed);
        for (label, r) in [("spectral-avgdeg (p=0.5)", &avg), ("spectral-logn (p=0.5)", &logn)] {
            records.push(BenchRecord {
                workload: name.to_string(),
                label: label.to_string(),
                params: vec![("seed".into(), seed.to_string())],
                ratio: Some(r.compression_ratio()),
                timings_ms: Vec::new(),
            });
        }
        rows.push(vec![name.to_string(), f3(avg.edge_reduction()), f3(logn.edge_reduction())]);
    }
    if !json {
        println!("{}", render_table(&["graph", "spectral-avgdeg", "spectral-logn"], &rows));
        println!("\n== Figure 6 (right): Triangle Reduction variants, p = 0.5 ==\n");
    }
    let tr_graphs = ["s-you", "s-pok", "s-flc", "h-hud", "v-ewk"];
    let mut rows = Vec::new();
    for name in tr_graphs {
        let g = presets::by_name(name).expect("preset exists");
        let plain = triangle_reduce(&g, TrConfig::plain_1(0.5), seed);
        let ct = triangle_reduce(&g, TrConfig::count_triangles(0.5), seed);
        let eo = triangle_reduce(&g, TrConfig::edge_once_1(0.5), seed);
        for (label, r) in [("0.5-1-TR", &plain), ("CT-0.5-1-TR", &ct), ("EO-0.5-1-TR", &eo)] {
            records.push(BenchRecord {
                workload: name.to_string(),
                label: label.to_string(),
                params: vec![("seed".into(), seed.to_string())],
                ratio: Some(r.compression_ratio()),
                timings_ms: Vec::new(),
            });
        }
        rows.push(vec![
            name.to_string(),
            f3(plain.edge_reduction()),
            f3(ct.edge_reduction()),
            f3(eo.edge_reduction()),
        ]);
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&["graph", "0.5-1-TR", "CT-0.5-1-TR", "EO-0.5-1-TR"], &rows));
    println!("(edge reduction = fraction of edges removed; Fig. 6's y-axis)");
    println!("note: EO here is the protective edge-disjoint variant that realizes the");
    println!("paper's §6.1 guarantees; it trades some reduction for them (see EXPERIMENTS.md)");
}
