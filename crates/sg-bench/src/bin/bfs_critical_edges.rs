//! E9 — §7.2: BFS critical-edge preservation under spanners.
//!
//! Paper (s-pok): removing 21%/73%/89%/95% of edges (k = 2/8/32/128)
//! preserves 96%/75%/57%/27% of critical edges; accuracy is maintained
//! across roots and graphs. Expected shape: monotone decay of preservation
//! as k grows, robust to root choice.
//!
//! Run: `cargo run --release -p sg-bench --bin bfs_critical_edges`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::schemes::spanner;
use sg_graph::generators::presets;
use sg_graph::prng::bounded_u64;
use sg_metrics::critical_edge_preservation;

fn main() {
    let json = json_requested();
    if !json {
        println!("== BFS critical-edge preservation under O(k)-spanners ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in [("s-pok", presets::s_pok_like()), ("v-ewk", presets::v_ewk_like())] {
        for k in [2.0, 8.0, 32.0, 128.0] {
            // Average over LDD seeds (single runs vary when an exponential
            // shift lands on a mega-hub) and over BFS roots (the paper
            // reports accuracy is maintained across root choices).
            let mut removed_acc = 0.0;
            let mut ratios = Vec::new();
            let seeds = [7u64, 99, 1234];
            for &seed in &seeds {
                let r = spanner(&g, k, seed);
                removed_acc += r.edge_reduction();
                for i in 0..3u64 {
                    let root = bounded_u64(seed, i, 3, g.num_vertices() as u64) as u32;
                    ratios.push(critical_edge_preservation(&g, &r.graph, root));
                }
            }
            let removed = removed_acc / seeds.len() as f64;
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let spread = ratios.iter().cloned().fold(0.0f64, |a, b| a.max((b - mean).abs()));
            records.push(BenchRecord {
                workload: name.to_string(),
                label: format!("spanner (k={k})"),
                params: vec![
                    ("edges_removed".into(), format!("{removed:.4}")),
                    ("critical_kept".into(), format!("{mean:.4}")),
                    ("root_spread".into(), format!("{spread:.4}")),
                ],
                ratio: Some(1.0 - removed),
                timings_ms: Vec::new(),
            });
            rows.push(vec![
                name.to_string(),
                format!("{k}"),
                format!("{:.0}%", removed * 100.0),
                format!("{:.0}%", mean * 100.0),
                format!("{:.2}", spread),
            ]);
        }
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(&["graph", "k", "edges removed", "critical edges kept", "root spread"], &rows)
    );
    println!("(paper s-pok reference: 21/73/89/95% removed -> 96/75/57/27% kept)");
}
