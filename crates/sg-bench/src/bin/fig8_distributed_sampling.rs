//! E6 — Figure 8: distributed uniform sampling of the largest graphs.
//!
//! The paper compresses the five largest public graphs with the distributed
//! edge-kernel pipeline (p ∈ {0.4, 0.7}) and inspects degree distributions:
//! sampling "removes the clutter" (shrinks the number of distinct degrees)
//! while preserving the distribution's overall shape. Here the five graphs
//! are large R-MAT analogs and ranks are simulated threads with the same
//! rank counts ratioed down (see sg-dist).
//!
//! Run: `cargo run --release -p sg-bench --bin fig8_distributed_sampling`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_dist::distributed_uniform_sample;
use sg_graph::generators;
use sg_graph::properties::DegreeDistribution;

fn main() {
    let seed = 0xF18;
    // (name, scale, edge_factor, ranks) — mirrors h-wdc … h-dgh ordering.
    let specs = [
        ("h-wdc-like", 16u32, 16usize, 10usize),
        ("h-deu-like", 16, 12, 8),
        ("h-duk-like", 15, 16, 6),
        ("h-clu-like", 15, 12, 5),
        ("h-dgh-like", 15, 8, 4),
    ];
    let json = json_requested();
    if !json {
        println!("== Figure 8: distributed uniform sampling (simulated ranks) ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, scale, ef, ranks) in specs {
        let g = generators::rmat_graph500(scale, ef, seed ^ scale as u64);
        let orig = DegreeDistribution::of(&g);
        let mut row = vec![
            name.to_string(),
            format!("{}", g.num_vertices()),
            format!("{}", g.num_edges()),
            format!("{ranks}"),
            format!("{}", orig.support_size()),
        ];
        for p in [0.4, 0.7] {
            let dist = distributed_uniform_sample(&g, p, ranks, seed);
            let hist_support = dist.degree_histogram.len();
            row.push(format!("{hist_support}"));
            records.push(BenchRecord {
                workload: name.to_string(),
                label: format!("distributed-uniform (p={p})"),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("ranks".into(), ranks.to_string()),
                    ("support_before".into(), orig.support_size().to_string()),
                    ("support_after".into(), hist_support.to_string()),
                ],
                ratio: None,
                timings_ms: Vec::new(),
            });
            // Sanity: per-rank ownership balanced.
            let max_owned = dist.ranks.iter().map(|r| r.owned_edges).max().unwrap_or(0);
            let min_owned = dist.ranks.iter().map(|r| r.owned_edges).min().unwrap_or(0);
            assert!(max_owned - min_owned <= 1, "imbalanced shards");
        }
        rows.push(row);
        eprintln!("done: {name}");
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(
            &["graph", "n", "m", "ranks", "#degrees", "#degrees p=0.4", "#degrees p=0.7"],
            &rows
        )
    );
    println!("(#degrees = distinct degree values; sampling removes scatter -> fewer)");
}
