//! Load generator for the `sg-serve` front line: replays a concurrent
//! request mix (pings, prefix-sharing compress chains, stats) against an
//! in-process daemon with a **bounded** worker pool, from at least 2×
//! `--workers` concurrent clients.
//!
//! The binary asserts the service contract under load — every request
//! gets exactly one response (zero drops; `busy` turn-aways are retried
//! and counted, not lost), and all compress responses for a spec carry
//! the same checksum — then reports p50/p99 latency and throughput per
//! op in the `BenchRecord` schema so CI tracks serving tail latency.
//!
//! Run: `cargo run --release -p sg-bench --bin loadgen
//!       [-- --workers N] [--clients N] [--requests N] [--n N] [--json]
//!       [--trace-out FILE] [--slow-ms N] [--slowlog-out FILE]`
//!
//! `--trace-out` records sg-obs spans on both sides of the wire — the
//! daemon runs in-process, so one Chrome trace-event file interleaves
//! client `loadgen.request` spans with the server's `serve.request` and
//! `session.stage` spans on their real threads.
//!
//! `--slow-ms` sets the daemon's slowlog threshold (0 records every
//! request) and `--slowlog-out` scrapes the v2 `slowlog` op after the
//! storm, writing the raw response line — a per-request log artifact
//! for CI.

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_serve::{Client, Json, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The request mix each client cycles through: a liveness probe, three
/// chains sharing a `spanner:k=4` prefix (the cache-friendly serving
/// workload), and a stats poll.
const MIX: [(&str, Option<&str>); 5] = [
    ("ping", None),
    ("compress:a", Some("spanner:k=4,uniform:p=0.5")),
    ("compress:b", Some("spanner:k=4,uniform:p=0.3")),
    ("compress:c", Some("spanner:k=4,cut:k=2")),
    ("stats", None),
];

struct Sample {
    op: &'static str,
    latency: Duration,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() as f64 - 1.0)).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let mut workers: usize = 2;
    let mut clients: usize = 0; // 0 → 2x workers
    let mut requests: usize = 20;
    let mut n: usize = 5_000;
    let mut trace_out: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut slowlog_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--{what} needs an integer value"))
        };
        match flag.as_str() {
            "--workers" => workers = grab("workers"),
            "--clients" => clients = grab("clients"),
            "--requests" => requests = grab("requests"),
            "--n" => n = grab("n"),
            "--json" => {}
            "--trace-out" => {
                trace_out =
                    Some(it.next().unwrap_or_else(|| panic!("--trace-out needs a path")).clone());
            }
            "--slow-ms" => slow_ms = Some(grab("slow-ms") as u64),
            "--slowlog-out" => {
                slowlog_out =
                    Some(it.next().unwrap_or_else(|| panic!("--slowlog-out needs a path")).clone());
            }
            other => panic!("unknown flag {other}"),
        }
    }
    // Enable span recording before the daemon binds, so its request and
    // stage spans land in the same trace as the client-side ones.
    if trace_out.is_some() {
        sg_obs::trace::set_trace_enabled(true);
    }
    let workers = workers.max(1);
    let clients = if clients == 0 { workers * 2 } else { clients };
    assert!(clients >= workers * 2, "loadgen must oversubscribe: clients >= 2x workers");
    let json = json_requested();
    let workload = format!("ba-n{n}");

    let g = sg_graph::generators::barabasi_albert(n, 4, 0x10AD);
    let dir = std::env::temp_dir().join(format!("sg-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("input.sgr");
    sg_store::save_sgr(&g, &path).expect("save input");

    // Queue depth sized to the oversubscription so waiting clients park
    // in the queue; `busy` turn-aways still happen in bursts and are
    // retried below.
    // With an explicit --slow-ms the slowlog ring is sized to hold the
    // whole storm, so --slowlog-out is a complete request log artifact.
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        workers,
        queue_depth: clients,
        slow_ms: slow_ms.unwrap_or(defaults.slow_ms),
        slowlog_capacity: if slow_ms.is_some() {
            (clients * requests + 8).max(defaults.slowlog_capacity)
        } else {
            defaults.slowlog_capacity
        },
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let mut seed_client = Client::connect(&addr).expect("connect");
    let response = seed_client
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(path.to_string_lossy().into_owned())),
        )
        .expect("load");
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "load failed: {}", response.render());
    drop(seed_client); // free the worker before the storm

    let busy_retries = AtomicU64::new(0);
    let started = Instant::now();
    let per_client: Vec<(Vec<Sample>, BTreeMap<&'static str, String>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    let busy_retries = &busy_retries;
                    scope.spawn(move || {
                        let mut samples = Vec::with_capacity(requests);
                        let mut checksums: BTreeMap<&'static str, String> = BTreeMap::new();
                        let mut client = Client::connect(&addr).expect("connect");
                        for r in 0..requests {
                            let (op, spec) = MIX[(c + r) % MIX.len()];
                            let request = match spec {
                                Some(spec) => Client::request_for("compress")
                                    .with("graph", Json::str("g"))
                                    .with("spec", Json::str(spec))
                                    .with("seed", Json::u64(11)),
                                None if op == "stats" => Client::request_for("stats"),
                                None => Client::request_for("ping"),
                            };
                            // Exactly one response per request: a `busy`
                            // turn-away closes the connection, so honor
                            // the hint, reconnect, and retry until served.
                            let response = loop {
                                let start = Instant::now();
                                let response = {
                                    let _sp = sg_obs::span!("loadgen.request", op = op, client = c);
                                    client.request(&request).expect("one response")
                                };
                                let code = response
                                    .get("error")
                                    .and_then(|e| e.get("code"))
                                    .and_then(Json::as_str);
                                if code == Some("busy") {
                                    busy_retries.fetch_add(1, Ordering::Relaxed);
                                    let nap = response
                                        .get("error")
                                        .and_then(|e| e.get("retry_after_ms"))
                                        .and_then(Json::as_u64)
                                        .unwrap_or(100);
                                    std::thread::sleep(Duration::from_millis(nap));
                                    client = Client::connect(&addr).expect("reconnect");
                                    continue;
                                }
                                assert_eq!(
                                    response.get("ok"),
                                    Some(&Json::Bool(true)),
                                    "request failed under load: {}",
                                    response.render()
                                );
                                samples.push(Sample { op, latency: start.elapsed() });
                                break response;
                            };
                            if let Some(sum) = response.get("checksum").and_then(Json::as_str) {
                                let seen = checksums.entry(op).or_insert_with(|| sum.to_string());
                                assert_eq!(seen, sum, "{op}: checksum drifted under load");
                            }
                        }
                        (samples, checksums)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
    let wall = started.elapsed();

    // Contract: zero dropped responses, and identical checksums across
    // clients for every compress spec.
    let answered: usize = per_client.iter().map(|(s, _)| s.len()).sum();
    assert_eq!(answered, clients * requests, "every request got exactly one response");
    let mut agreed: BTreeMap<&'static str, String> = BTreeMap::new();
    for (_, checksums) in &per_client {
        for (op, sum) in checksums {
            let seen = agreed.entry(op).or_insert_with(|| sum.clone());
            assert_eq!(seen, sum, "{op}: clients disagree on the result digest");
        }
    }

    let mut by_op: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    let mut all: Vec<f64> = Vec::with_capacity(answered);
    for (samples, _) in &per_client {
        for s in samples {
            let ms = s.latency.as_secs_f64() * 1e3;
            by_op.entry(s.op).or_default().push(ms);
            all.push(ms);
        }
    }
    all.sort_by(|a, b| a.total_cmp(b));
    let throughput = answered as f64 / wall.as_secs_f64().max(1e-9);
    let retries = busy_retries.load(Ordering::Relaxed);

    let shared_params = vec![
        ("workers".to_string(), workers.to_string()),
        ("clients".to_string(), clients.to_string()),
        ("requests".to_string(), answered.to_string()),
        ("busy_retries".to_string(), retries.to_string()),
        ("dropped".to_string(), "0".to_string()),
    ];
    let mut records = vec![BenchRecord {
        workload: workload.clone(),
        label: "loadgen:overall".into(),
        params: shared_params.clone(),
        ratio: None,
        timings_ms: vec![
            ("p50".into(), percentile(&all, 50.0)),
            ("p99".into(), percentile(&all, 99.0)),
            ("max".into(), percentile(&all, 100.0)),
            ("wall".into(), wall.as_secs_f64() * 1e3),
            ("throughput_rps".into(), throughput),
        ],
    }];
    // Full latency distribution on the sg-obs grid: cumulative
    // (Prometheus-style `le`) bucket counts, so CI can check shape and
    // monotonicity rather than just two quantiles. `le_+Inf` equals the
    // total sample count by construction.
    let mut bucket_timings: Vec<(String, f64)> = sg_obs::registry::LATENCY_BUCKETS_MS
        .iter()
        .map(|&bound| {
            let covered = all.iter().filter(|&&ms| ms <= bound).count();
            (format!("le_{bound}"), covered as f64)
        })
        .collect();
    bucket_timings.push(("le_+Inf".to_string(), all.len() as f64));
    // Exact first moment alongside the bucketized distribution: the sum
    // and mean are what a drift gate can band tightly, where individual
    // bucket counts wobble run to run.
    let sum_ms: f64 = all.iter().sum();
    bucket_timings.push(("sum_ms".to_string(), sum_ms));
    bucket_timings.push(("mean_ms".to_string(), sum_ms / (all.len().max(1) as f64)));
    records.push(BenchRecord {
        workload: workload.clone(),
        label: "loadgen:latency_histogram".into(),
        params: shared_params.clone(),
        ratio: None,
        timings_ms: bucket_timings,
    });
    let mut rows = Vec::new();
    for (op, ms) in &mut by_op {
        ms.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99) = (percentile(ms, 50.0), percentile(ms, 99.0));
        records.push(BenchRecord {
            workload: workload.clone(),
            label: format!("loadgen:{op}"),
            params: shared_params.clone(),
            ratio: None,
            timings_ms: vec![("p50".into(), p50), ("p99".into(), p99)],
        });
        rows.push(vec![
            op.to_string(),
            ms.len().to_string(),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
        ]);
    }

    let mut closer = Client::connect(&addr).expect("connect");
    // Scrape the slow-request ring before shutting the daemon down; the
    // raw response line is the artifact (schema: docs/PROTOCOL.md).
    if let Some(path) = &slowlog_out {
        let response = closer.request(&Client::request_for("slowlog")).expect("slowlog response");
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "slowlog scrape failed: {}",
            response.render()
        );
        std::fs::write(path, response.render() + "\n").expect("write slowlog");
        eprintln!("loadgen: slowlog written to {path}");
    }
    let _ = closer.request(&Client::request_for("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);

    // Written after the daemon joins: every server thread's ring is final.
    if let Some(path) = &trace_out {
        sg_obs::trace::write_chrome_trace(std::path::Path::new(path)).expect("write trace");
        eprintln!("loadgen: trace written to {path}");
    }

    if json {
        println!("{}", render_json(&records));
    } else {
        println!("{}", render_table(&["op", "count", "p50 ms", "p99 ms"], &rows));
        println!(
            "{answered} responses from {clients} clients over {workers} workers in \
             {:.0} ms ({throughput:.0} req/s), {retries} busy retries, 0 dropped",
            wall.as_secs_f64() * 1e3
        );
    }
}
