//! Encoded-vs-raw kernel benchmark: bytes on disk, resident bytes, and
//! kernel wall time over the decode-on-the-fly `.sgr` v2 adjacency
//! (delta+varint sparse rows, bitmap dense rows) against raw CSR.
//!
//! Every kernel is asserted bit-identical across the two representations
//! before timing — the whole point of the cursor API is that compression
//! never changes an answer.
//!
//! Workloads: a Barabási–Albert social-style graph (skewed degrees, where
//! gap encoding wins) and an RMAT Graph500 instance (defaults to scale 20,
//! edge factor 10 ≈ 10^7 edges). Triangle counting runs only below
//! `--tc-max-edges` (default 5M) to keep the big instance's runtime sane.
//!
//! Run: `cargo run --release -p sg-bench --bin encoded_kernels
//!       [-- --n N] [--k N] [--scale N] [--ef N] [--runs N]
//!          [--tc-max-edges N] [--json]`

use sg_algos::{bfs, cc, pagerank, tc};
use sg_bench::{
    densest_vertex, json_requested, median_time, ms, render_json, render_table, BenchRecord,
};
use sg_graph::{generators, properties, CsrGraph, EncodedCsr};
use std::time::Duration;

/// Resident bytes of the raw CSR adjacency (offsets + targets + slot edge
/// ids, both directions for directed graphs) — what the encoded sections
/// replace.
fn raw_adjacency_bytes(g: &CsrGraph) -> usize {
    g.csr_offsets().len() * 8 + g.csr_targets().len() * 4 + g.csr_slot_edges().len() * 4
}

struct KernelTimes {
    label: &'static str,
    raw: Duration,
    encoded: Duration,
}

fn bench_workload(
    workload: &str,
    g: &CsrGraph,
    runs: usize,
    tc_max_edges: usize,
    records: &mut Vec<BenchRecord>,
    rows: &mut Vec<Vec<String>>,
) {
    let enc = EncodedCsr::from_graph(g);

    // --- storage accounting -------------------------------------------
    let dir = std::env::temp_dir().join("sg-bench-encoded-kernels");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let raw_path = dir.join(format!("{workload}.v1.sgr"));
    let v2_path = dir.join(format!("{workload}.v2.sgr"));
    sg_store::save_sgr(g, &raw_path).expect("write v1");
    sg_store::save_sgr_with(g, &v2_path, sg_store::Encoding::Delta).expect("write v2");
    let raw_file = std::fs::metadata(&raw_path).expect("stat v1").len() as usize;
    let v2_file = std::fs::metadata(&v2_path).expect("stat v2").len() as usize;
    let raw_adj = raw_adjacency_bytes(g);
    let enc_adj = enc.adjacency_bytes();
    records.push(BenchRecord {
        workload: workload.to_string(),
        label: "storage".to_string(),
        params: vec![
            ("n".into(), g.num_vertices().to_string()),
            ("m".into(), g.num_edges().to_string()),
            ("file_raw_bytes".into(), raw_file.to_string()),
            ("file_encoded_bytes".into(), v2_file.to_string()),
            ("adjacency_raw_bytes".into(), raw_adj.to_string()),
            ("adjacency_encoded_bytes".into(), enc_adj.to_string()),
            ("resident_raw_bytes".into(), raw_adj.to_string()),
            ("resident_encoded_bytes".into(), enc.storage_bytes().to_string()),
        ],
        ratio: Some(enc_adj as f64 / raw_adj as f64),
        timings_ms: vec![],
    });
    rows.push(vec![
        workload.to_string(),
        "bytes:file".to_string(),
        raw_file.to_string(),
        v2_file.to_string(),
        format!("{:.2}x", raw_file as f64 / v2_file as f64),
    ]);
    rows.push(vec![
        workload.to_string(),
        "bytes:adjacency".to_string(),
        raw_adj.to_string(),
        enc_adj.to_string(),
        format!("{:.2}x", raw_adj as f64 / enc_adj as f64),
    ]);

    // --- kernels: assert bit-identity, then time ----------------------
    let root = densest_vertex(g);
    let pr_cfg = pagerank::PageRankConfig { max_iterations: 20, ..Default::default() };
    let mut times: Vec<KernelTimes> = Vec::new();

    let pr_raw = pagerank::pagerank(g, pr_cfg);
    let pr_enc = pagerank::pagerank(&enc, pr_cfg);
    assert_eq!(pr_raw.scores, pr_enc.scores, "{workload}: PageRank must be bit-identical");
    times.push(KernelTimes {
        label: "PR",
        raw: median_time(runs, || {
            pagerank::pagerank(g, pr_cfg);
        }),
        encoded: median_time(runs, || {
            pagerank::pagerank(&enc, pr_cfg);
        }),
    });

    // Parallel BFS parents race among equal-depth candidates (GAPBS-style),
    // so bit-identity is asserted on the deterministic outputs: parallel
    // depths, plus sequential parents (fixed iteration order).
    let bfs_raw = bfs::bfs_parallel(g, root);
    let bfs_enc = bfs::bfs_parallel(&enc, root);
    assert_eq!(bfs_raw.depth, bfs_enc.depth, "{workload}: BFS depths must match");
    assert_eq!(bfs_raw.reached, bfs_enc.reached, "{workload}: BFS reach must match");
    let seq_raw = bfs::bfs(g, root);
    let seq_enc = bfs::bfs(&enc, root);
    assert_eq!(seq_raw.parent, seq_enc.parent, "{workload}: sequential BFS parents must match");
    times.push(KernelTimes {
        label: "BFS",
        raw: median_time(runs, || {
            bfs::bfs_parallel(g, root);
        }),
        encoded: median_time(runs, || {
            bfs::bfs_parallel(&enc, root);
        }),
    });

    let cc_raw = cc::connected_components(g);
    let cc_enc = cc::connected_components(&enc);
    assert_eq!(cc_raw.labels, cc_enc.labels, "{workload}: CC labels must match");
    times.push(KernelTimes {
        label: "CC",
        raw: median_time(runs, || {
            cc::connected_components(g);
        }),
        encoded: median_time(runs, || {
            cc::connected_components(&enc);
        }),
    });

    if g.num_edges() <= tc_max_edges {
        assert_eq!(
            tc::count_triangles(g),
            tc::count_triangles(&enc),
            "{workload}: triangle counts must match"
        );
        times.push(KernelTimes {
            label: "TC",
            raw: median_time(runs, || {
                tc::count_triangles(g);
            }),
            encoded: median_time(runs, || {
                tc::count_triangles(&enc);
            }),
        });
    }

    assert_eq!(
        properties::degree_stats(g),
        properties::degree_stats(&enc),
        "{workload}: degree stats must match"
    );
    times.push(KernelTimes {
        label: "degrees",
        raw: median_time(runs, || {
            properties::degree_stats(g);
        }),
        encoded: median_time(runs, || {
            properties::degree_stats(&enc);
        }),
    });

    for t in times {
        records.push(BenchRecord {
            workload: workload.to_string(),
            label: format!("kernel:{}", t.label),
            params: vec![("runs".into(), runs.to_string())],
            ratio: Some(t.encoded.as_secs_f64() / t.raw.as_secs_f64().max(1e-12)),
            timings_ms: vec![
                ("raw".into(), t.raw.as_secs_f64() * 1e3),
                ("encoded".into(), t.encoded.as_secs_f64() * 1e3),
            ],
        });
        rows.push(vec![
            workload.to_string(),
            format!("time:{}", t.label),
            ms(t.raw),
            ms(t.encoded),
            format!("{:.2}x", t.raw.as_secs_f64() / t.encoded.as_secs_f64().max(1e-12)),
        ]);
    }
}

fn main() {
    let mut n: usize = 100_000;
    let mut k: usize = 8;
    let mut scale: u32 = 20;
    let mut ef: usize = 10;
    let mut runs: usize = 3;
    let mut tc_max_edges: usize = 5_000_000;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--{what} needs an integer value"))
        };
        match flag.as_str() {
            "--n" => n = grab("n"),
            "--k" => k = grab("k"),
            "--scale" => scale = grab("scale") as u32,
            "--ef" => ef = grab("ef"),
            "--runs" => runs = grab("runs"),
            "--tc-max-edges" => tc_max_edges = grab("tc-max-edges"),
            "--json" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    let json = json_requested();

    let mut records = Vec::new();
    let mut rows = Vec::new();

    let ba = generators::barabasi_albert(n, k, 0xE4C0);
    bench_workload(&format!("ba-n{n}-k{k}"), &ba, runs, tc_max_edges, &mut records, &mut rows);
    drop(ba);

    let rmat = generators::rmat_graph500(scale, ef, 0xE4C1);
    bench_workload(
        &format!("rmat-s{scale}-e{ef}"),
        &rmat,
        runs,
        tc_max_edges,
        &mut records,
        &mut rows,
    );

    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&["workload", "metric", "raw", "encoded", "raw/encoded"], &rows));
    println!("(all kernels asserted bit-identical raw vs encoded before timing)");
}
