//! E10 — sharded-execution scaling: every scheme class with a sharded
//! plan (edge kernel, Plain/Edge-Once Triangle Reduction, vertex kernel)
//! across rank counts, reporting the protocol costs the paper's
//! distributed chapter cares about: edge-ownership imbalance, messages
//! exchanged, and supersteps to quiescence. Results are bit-identical to
//! the shared-memory run at every rank count (tests/dist_equivalence.rs
//! pins that), so this harness only measures.
//!
//! Run: `cargo run --release -p sg-bench --bin dist_scale`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::{SchemeParams, SchemeRegistry};
use sg_dist::distributed_compress;
use sg_graph::generators;
use std::time::Instant;

fn main() {
    let seed = 0xD157;
    // Skewed but hub-bounded: preferential attachment gives the Edge-Once
    // disciplines real multi-superstep work (~50 rounds) without the
    // pathological hub-triangle overlap of R-MAT, where the reservation
    // protocol's conflict chains make runs minutes long.
    let g = generators::planted_triangles(&generators::barabasi_albert(16_000, 8, 51), 6000, 52);
    let registry = SchemeRegistry::with_defaults();
    let schemes = [
        ("uniform", SchemeParams::from_pairs(&[("p", "0.6")])),
        ("tr", SchemeParams::from_pairs(&[("p", "0.6")])),
        ("tr-eo", SchemeParams::from_pairs(&[("p", "0.6")])),
        ("lowdeg", SchemeParams::from_pairs(&[])),
    ];
    let json = json_requested();
    if !json {
        println!("== dist_scale: sharded execution across rank counts ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, params) in schemes {
        let scheme = registry.create(name, &params).expect("registered scheme");
        for ranks in [2usize, 4, 8] {
            let started = Instant::now();
            let dist = distributed_compress(&g, scheme.as_ref(), ranks, seed)
                .expect("scheme has a sharded plan");
            let ms = started.elapsed().as_secs_f64() * 1e3;
            let ratio = dist.result.graph.num_edges() as f64 / g.num_edges() as f64;
            rows.push(vec![
                name.to_string(),
                format!("{ranks}"),
                format!("{ratio:.3}"),
                format!("{:.2}", dist.edge_imbalance_pct()),
                format!("{}", dist.total_messages()),
                format!("{}", dist.max_supersteps()),
                format!("{ms:.1}"),
            ]);
            records.push(BenchRecord {
                workload: "ba-16k-planted".to_string(),
                label: format!("dist:{} r{ranks}", scheme.label()),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("ranks".into(), ranks.to_string()),
                    ("imbalance_pct".into(), format!("{:.3}", dist.edge_imbalance_pct())),
                    ("messages".into(), dist.total_messages().to_string()),
                    ("supersteps".into(), dist.max_supersteps().to_string()),
                ],
                ratio: Some(ratio),
                timings_ms: vec![("total".into(), ms)],
            });
        }
        eprintln!("done: {name}");
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(
            &["scheme", "ranks", "ratio", "imbalance%", "messages", "supersteps", "ms"],
            &rows
        )
    );
    println!("(imbalance% = (max-mean)/mean owned edges; messages/supersteps from the");
    println!(" rank exchange protocol — stateless plans gather once, EO disciplines");
    println!(" iterate until no triangle is pending)");
}
