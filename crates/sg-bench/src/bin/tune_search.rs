//! Auto-tuning search benchmark: wall time and outcome of an `sg-tune`
//! run, in the same `BenchRecord` schema the other harness binaries emit —
//! so CI can track the search's cost *and* the quality of the frontier it
//! finds over time.
//!
//! Run: `cargo run --release -p sg-bench --bin tune_search
//!       [-- --n N] [--k N] [--depth N] [--rounds N] [--json]`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::SchemeRegistry;
use sg_graph::generators;
use sg_tune::{tune, Target, TuneConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut n: usize = 5_000;
    let mut k: usize = 4;
    let mut depth: usize = 2;
    let mut rounds: usize = 1;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--{what} needs an integer value"))
        };
        match flag.as_str() {
            "--n" => n = grab("n"),
            "--k" => k = grab("k"),
            "--depth" => depth = grab("depth"),
            "--rounds" => rounds = grab("rounds"),
            "--json" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    let json = json_requested();
    let workload = format!("ba-n{n}-k{k}");

    let g = generators::barabasi_albert(n, k, 0x70E);
    let registry = Arc::new(SchemeRegistry::with_defaults());
    let target = Target::parse("pagerank-kl<=0.1").expect("valid target");
    let mut cfg = TuneConfig::new(g.num_edges() / 2, target, 0x70E);
    cfg.max_depth = depth;
    cfg.rounds = rounds;
    // A tractable chain alphabet for a recurring benchmark: one scheme per
    // kernel class that PageRank responds to.
    cfg.schemes = Some(vec!["uniform".into(), "spanner".into(), "lowdeg".into()]);

    let start = Instant::now();
    let outcome = tune(&g, &registry, &cfg).expect("search runs");
    let search_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut records = vec![BenchRecord {
        workload: workload.clone(),
        label: "tune:search".into(),
        params: vec![
            ("target".into(), target.render()),
            ("budget_edges".into(), cfg.budget_edges.to_string()),
            ("depth".into(), depth.to_string()),
            ("rounds".into(), rounds.to_string()),
            ("evaluated".into(), outcome.evaluated.to_string()),
            ("stages_executed".into(), outcome.stages_executed.to_string()),
            ("stages_total".into(), outcome.stages_total.to_string()),
            (
                "winner".into(),
                outcome.winner.as_ref().map_or("none".into(), |w| w.rendered.clone()),
            ),
        ],
        ratio: outcome.winner.as_ref().map(|w| w.ratio),
        timings_ms: vec![("search".into(), search_ms)],
    }];
    for p in outcome.frontier.points() {
        records.push(BenchRecord {
            workload: workload.clone(),
            label: format!("tune:frontier:{}", p.rendered),
            params: vec![
                ("metric".into(), target.metric.to_string()),
                ("value".into(), format!("{}", p.metric)),
                ("edges".into(), p.edges.to_string()),
            ],
            ratio: Some(p.ratio),
            timings_ms: Vec::new(),
        });
    }

    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "workload: {workload}, m = {}, target {}, budget {} edges\n",
        g.num_edges(),
        target.render(),
        cfg.budget_edges
    );
    println!(
        "evaluated {} candidates in {search_ms:.0} ms; frontier has {} points\n",
        outcome.evaluated,
        outcome.frontier.len()
    );
    let rows: Vec<Vec<String>> = outcome
        .frontier
        .points()
        .iter()
        .map(|p| {
            vec![
                p.rendered.clone(),
                p.edges.to_string(),
                format!("{:.3}", p.ratio),
                format!("{:.5}", p.metric),
            ]
        })
        .collect();
    println!("{}", render_table(&["spec", "edges", "m'/m", "pagerank-kl"], &rows));
    match &outcome.winner {
        Some(w) => println!(
            "winner: {} -> {} edges ({:.1}% kept), KL {:.5} bits, seed {}",
            w.rendered,
            w.edges,
            w.ratio * 100.0,
            w.metric,
            w.seed
        ),
        None => println!("winner: none (target infeasible within the budget)"),
    }
}
