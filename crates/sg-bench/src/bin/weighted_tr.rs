//! E13 — §7.1: TR on weighted graphs — MST and SSSP behaviour.
//!
//! Expected shape (paper): on very sparse road networks TR's compression
//! ratio and speedups are low (few triangles); MST runtime is mostly
//! n-bound and barely changes; SSSP speedups track BFS-style gains on
//! triangle-rich graphs; the max-weight TR variant preserves MST weight
//! exactly.
//!
//! Run: `cargo run --release -p sg-bench --bin weighted_tr`

use sg_algos::{mst, sssp};
use sg_bench::{f3, json_requested, median_time, render_json, render_table, BenchRecord};
use sg_core::schemes::{triangle_reduce, TrConfig};
use sg_graph::generators::{self, presets};

fn main() {
    let seed = 0xE13;
    let workloads = vec![
        ("v-usa (road)", presets::v_usa_like()),
        (
            "v-ewk (weighted)",
            generators::with_random_weights(&presets::v_ewk_like(), 1.0, 100.0, seed),
        ),
    ];
    let json = json_requested();
    if !json {
        println!("== Triangle Reduction on weighted graphs ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in workloads {
        for p in [0.5, 0.9] {
            let r = triangle_reduce(&g, TrConfig::max_weight(p), seed);
            let w0 = mst::minimum_spanning_forest(&g).total_weight;
            let w1 = mst::minimum_spanning_forest(&r.graph).total_weight;
            let t_mst0 = median_time(3, || {
                mst::minimum_spanning_forest(&g);
            });
            let t_mst1 = median_time(3, || {
                mst::minimum_spanning_forest(&r.graph);
            });
            let root = sg_bench::densest_vertex(&g);
            let t_sssp0 = median_time(3, || {
                sssp::delta_stepping_auto(&g, root);
            });
            let t_sssp1 = median_time(3, || {
                sssp::delta_stepping_auto(&r.graph, root);
            });
            records.push(BenchRecord {
                workload: name.to_string(),
                label: format!("maxw-{p}-1-TR"),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("mst_weight_err".into(), format!("{:.6}", (w1 - w0).abs() / w0.max(1.0))),
                ],
                ratio: Some(r.compression_ratio()),
                timings_ms: vec![
                    ("mst_before".into(), t_mst0.as_secs_f64() * 1e3),
                    ("mst_after".into(), t_mst1.as_secs_f64() * 1e3),
                    ("sssp_before".into(), t_sssp0.as_secs_f64() * 1e3),
                    ("sssp_after".into(), t_sssp1.as_secs_f64() * 1e3),
                ],
            });
            rows.push(vec![
                name.to_string(),
                format!("maxw-{p}-1-TR"),
                f3(r.compression_ratio()),
                format!("{:.4}", (w1 - w0).abs() / w0.max(1.0)),
                f3(sg_bench::relative_runtime_diff(t_mst0, t_mst1)),
                f3(sg_bench::relative_runtime_diff(t_sssp0, t_sssp1)),
            ]);
        }
        eprintln!("done: {name}");
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(
            &["graph", "scheme", "m'/m", "MST weight err", "MST speedup", "SSSP speedup"],
            &rows
        )
    );
    println!("(road networks barely compress under TR; MST weight error must be ~0)");
}
