//! E3 — Table 5: Kullback–Leibler divergence between PageRank
//! distributions on original and compressed graphs.
//!
//! Schemes: EO-{0.8,1.0}-1-TR, Uniform p ∈ {0.2, 0.5}, Spanner
//! k ∈ {2, 16, 128} on the five Table 5 graphs. Expected shape: KL grows
//! with compression aggressiveness within each scheme family, and the road
//! network (v-usa) shows near-zero KL for spanners.
//!
//! Run: `cargo run --release -p sg-bench --bin tab5_kl_pagerank`

use sg_algos::pagerank::pagerank_default;
use sg_bench::{json_requested, render_json, render_table, scheme, BenchRecord};
use sg_core::SchemeRegistry;
use sg_graph::generators::presets;
use sg_metrics::kl_divergence;

fn main() {
    let json = json_requested();
    let seed = 0x7AB5;
    let registry = SchemeRegistry::with_defaults();
    let schemes = [
        scheme(&registry, "tr-eo", &[("p", "0.8")]),
        scheme(&registry, "tr-eo", &[("p", "1.0")]),
        scheme(&registry, "uniform", &[("p", "0.2")]),
        scheme(&registry, "uniform", &[("p", "0.5")]),
        scheme(&registry, "spanner", &[("k", "2")]),
        scheme(&registry, "spanner", &[("k", "16")]),
        scheme(&registry, "spanner", &[("k", "128")]),
    ];
    let headers: Vec<&str> = std::iter::once("graph")
        .chain([
            "EO-0.8-1-TR",
            "EO-1.0-1-TR",
            "Unif(0.2)",
            "Unif(0.5)",
            "Span(k=2)",
            "Span(k=16)",
            "Span(k=128)",
        ])
        .collect();

    if !json {
        println!("== Table 5: KL divergence of PageRank distributions ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in presets::table5_suite() {
        let base = pagerank_default(&g).scores;
        let mut row = vec![name.to_string()];
        for scheme in &schemes {
            let r = scheme.apply(&g, seed);
            let compressed = pagerank_default(&r.graph).scores;
            let kl = kl_divergence(&base, &compressed);
            row.push(format!("{kl:.4}"));
            records.push(BenchRecord {
                workload: name.to_string(),
                label: scheme.label(),
                params: vec![("seed".into(), seed.to_string()), ("kl_bits".into(), kl.to_string())],
                ratio: Some(r.compression_ratio()),
                timings_ms: Vec::new(),
            });
        }
        rows.push(row);
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&headers, &rows));
    println!("(lower = closer to the original PageRank distribution)");
}
