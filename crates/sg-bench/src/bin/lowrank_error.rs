//! E11 — §7.4: low-rank (clustered SVD) comparison.
//!
//! Expected shape (paper §4.6/§7.4): low-rank approximation of the
//! adjacency matrix entails significant storage overheads and consistently
//! very high error rates compared with Slim Graph kernels at matching
//! budgets.
//!
//! Run: `cargo run --release -p sg-bench --bin lowrank_error`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::ldd::low_diameter_decomposition;
use sg_core::schemes::uniform_sample;
use sg_graph::generators;
use sg_lowrank::{clustered_lowrank, lowrank_approximation};

fn main() {
    let json = json_requested();
    let seed = 0x10A;
    let g = generators::barabasi_albert(1200, 5, seed);
    if !json {
        println!("workload: BA graph, n = {}, m = {}\n", g.num_vertices(), g.num_edges());
        println!("== whole-graph truncated decomposition ==\n");
    }
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for rank in [4, 16, 64] {
        let r = lowrank_approximation(&g, rank, seed);
        records.push(BenchRecord {
            workload: "ba-1200".into(),
            label: format!("lowrank (rank={rank})"),
            params: vec![
                ("seed".into(), seed.to_string()),
                ("error_rate".into(), format!("{:.4}", r.error_rate())),
                ("storage_overhead".into(), format!("{:.4}", r.storage_overhead())),
            ],
            ratio: None,
            timings_ms: Vec::new(),
        });
        rows.push(vec![
            format!("{rank}"),
            format!("{:.2}", r.error_rate()),
            format!("{}", r.false_positives),
            format!("{}", r.false_negatives),
            format!("{:.2}x", r.storage_overhead()),
        ]);
    }
    if !json {
        println!(
            "{}",
            render_table(&["rank", "error rate", "false+", "false-", "storage vs CSR"], &rows)
        );
        println!("\n== clustered variant (LDD clusters) ==\n");
    }
    let mapping = low_diameter_decomposition(&g, 0.2, seed);
    let mut rows = Vec::new();
    for rank in [4, 16] {
        let r = clustered_lowrank(&g, &mapping.clusters, rank, seed);
        records.push(BenchRecord {
            workload: "ba-1200".into(),
            label: format!("lowrank-clustered (rank={rank})"),
            params: vec![
                ("seed".into(), seed.to_string()),
                ("clusters".into(), mapping.num_clusters().to_string()),
                ("error_rate".into(), format!("{:.4}", r.error_rate())),
                ("storage_overhead".into(), format!("{:.4}", r.storage_overhead())),
            ],
            ratio: None,
            timings_ms: Vec::new(),
        });
        rows.push(vec![
            format!("{rank}"),
            format!("{}", mapping.num_clusters()),
            format!("{:.2}", r.error_rate()),
            format!("{:.2}x", r.storage_overhead()),
        ]);
    }
    // Slim Graph reference point at a comparable "loss budget".
    let u = uniform_sample(&g, 0.5, seed);
    records.push(BenchRecord {
        workload: "ba-1200".into(),
        label: "uniform (p=0.5) reference".into(),
        params: vec![
            ("seed".into(), seed.to_string()),
            (
                "storage_overhead".into(),
                format!("{:.4}", u.graph.storage_bytes() as f64 / g.storage_bytes() as f64),
            ),
        ],
        ratio: Some(u.compression_ratio()),
        timings_ms: Vec::new(),
    });
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&["rank", "#clusters", "error rate", "storage vs CSR"], &rows));
    println!(
        "\nreference: uniform sampling p=0.5 -> edge 'error' = {:.2} of m, storage {:.2}x CSR",
        u.edge_reduction(),
        u.graph.storage_bytes() as f64 / g.storage_bytes() as f64
    );
    println!(
        "(low-rank error rates should far exceed the sampling loss at any comparable storage)"
    );
}
