//! E14 — §7.2: disconnection behaviour of the scheme families.
//!
//! Paper: "spanners and the EO variant of TR maintain the number of CC.
//! Contrarily, random uniform sampling and spectral sparsification
//! disconnect graphs. Graph summarization acts similarly to random uniform
//! sampling … \[spectral\] generates significantly fewer components than
//! \[uniform\] because used spectral schemes were designed to minimize graph
//! disconnectedness."
//!
//! Run: `cargo run --release -p sg-bench --bin cc_disconnection`

use sg_algos::cc::connected_components;
use sg_bench::{json_requested, render_json, render_table, scheme, BenchRecord};
use sg_core::{CompressionScheme, SchemeRegistry};
use sg_graph::generators::presets;

fn main() {
    let seed = 0xCC14;
    let registry = SchemeRegistry::with_defaults();
    let json = json_requested();
    if !json {
        println!("== Components after compression (schemes at comparable budgets) ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in [("s-pok", presets::s_pok_like()), ("s-you", presets::s_you_like())] {
        let base_cc = connected_components(&g).num_components;
        // Fix the budget with spectral; match uniform & summarization to it.
        let spec = scheme(&registry, "spectral", &[("p", "0.4")]).apply(&g, seed);
        let budget = (spec.edge_reduction() * 1000.0).round() / 1000.0;
        let schemes: Vec<(String, usize, f64)> = vec![
            scheme_row(&g, &*scheme(&registry, "uniform", &[("p", &budget.to_string())]), seed),
            (
                format!("Spectral (matched, -{:.0}%)", budget * 100.0),
                connected_components(&spec.graph).num_components,
                spec.edge_reduction(),
            ),
            scheme_row(
                &g,
                &*scheme(&registry, "summary", &[("epsilon", &(budget / 2.0).to_string())]),
                seed,
            ),
            scheme_row(&g, &*scheme(&registry, "tr-eo", &[("p", "1.0")]), seed),
            scheme_row(&g, &*scheme(&registry, "spanner", &[("k", "8")]), seed),
            scheme_row(&g, &*scheme(&registry, "cut", &[("k", "2")]), seed),
        ];
        for (label, comps, removed) in schemes {
            records.push(BenchRecord {
                workload: name.to_string(),
                label: label.clone(),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("cc_before".into(), base_cc.to_string()),
                    ("cc_after".into(), comps.to_string()),
                ],
                ratio: Some(1.0 - removed),
                timings_ms: Vec::new(),
            });
            rows.push(vec![
                name.to_string(),
                label,
                format!("{:.0}%", removed * 100.0),
                base_cc.to_string(),
                comps.to_string(),
                format!("{:+}", comps as i64 - base_cc as i64),
            ]);
        }
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(&["graph", "scheme", "removed", "#CC before", "#CC after", "delta"], &rows)
    );
    println!("(expected: uniform/summary disconnect most; spectral far less; EO-TR,");
    println!(" spanner and cut sparsifier keep the count exactly)");
}

fn scheme_row(
    g: &sg_graph::CsrGraph,
    scheme: &dyn CompressionScheme,
    seed: u64,
) -> (String, usize, f64) {
    let r = scheme.apply(g, seed);
    (scheme.label(), connected_components(&r.graph).num_components, r.edge_reduction())
}
