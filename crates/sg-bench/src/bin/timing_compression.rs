//! E10 — §7.4: compression-routine timing.
//!
//! Expected shape (paper): sampling fastest; spectral negligibly slower
//! (kernels read vertex degrees); spanners >20% slower than the edge
//! kernels (LDD overhead); TR slower than spanners (O(m^{3/2}) vs O(m));
//! summarization >200% slower than TR (iterations + complex design).
//!
//! Run: `cargo run --release -p sg-bench --bin timing_compression [-- --json]`

use sg_bench::{json_requested, render_json, render_table, scheme, BenchRecord};
use sg_core::SchemeRegistry;
use sg_graph::generators::presets;

fn main() {
    let json = json_requested();
    let seed = 0x71E;
    let g = presets::v_ewk_like();
    if !json {
        println!("workload: v-ewk-like, n = {}, m = {}\n", g.num_vertices(), g.num_edges());
    }
    let registry = SchemeRegistry::with_defaults();
    let schemes = [
        scheme(&registry, "uniform", &[("p", "0.5")]),
        scheme(&registry, "spectral", &[("p", "0.5")]),
        scheme(&registry, "spanner", &[("k", "8")]),
        scheme(&registry, "tr", &[("p", "0.5")]),
        scheme(&registry, "summary", &[("epsilon", "0.1")]),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut base_ms: Option<f64> = None;
    for scheme in schemes {
        // Median of 3 runs (first result discarded as warmup inside apply's
        // repetitions).
        let mut times = Vec::new();
        let mut last = None;
        for rep in 0..3u64 {
            let r = scheme.apply(&g, seed ^ rep);
            times.push(r.elapsed.as_secs_f64() * 1e3);
            last = Some(r);
        }
        times.sort_by(f64::total_cmp);
        let med = times[1];
        let base = *base_ms.get_or_insert(med);
        let r = last.expect("ran at least once");
        records.push(BenchRecord {
            workload: "v-ewk-like".into(),
            label: scheme.label(),
            params: vec![("seed".into(), seed.to_string())],
            ratio: Some(r.compression_ratio()),
            timings_ms: vec![("compress".into(), med)],
        });
        rows.push(vec![
            scheme.label(),
            format!("{med:.1}"),
            format!("{:.1}x", med / base),
            format!("{:.3}", r.compression_ratio()),
        ]);
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&["scheme", "median ms", "vs sampling", "m'/m"], &rows));
    println!("(expected ordering: sampling <= spectral < spanner < TR < summarization)");
}
