//! E7 — Table 3: empirical validation of the theoretical bounds.
//!
//! For each (compression scheme × graph property) cell of Table 3 that
//! admits a checkable bound, measures the property before/after compression
//! and reports whether the paper's bound holds. Deterministic bounds must
//! hold exactly; expectation/w.h.p. bounds are checked with slack.
//!
//! Run: `cargo run --release -p sg-bench --bin tab3_bounds`

use sg_algos::{cc, coloring, diameter, matching, mis, mst, sssp, tc};
use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::schemes::uniform_sample;
use sg_core::schemes::{
    remove_low_degree, spanner, spectral_sparsify, summarize, triangle_reduce, SummarizationConfig,
    TrConfig, UpsilonVariant,
};
use sg_graph::generators;
use sg_graph::CsrGraph;

struct Check {
    scheme: &'static str,
    property: &'static str,
    bound: String,
    measured: String,
    holds: bool,
}

fn check(
    out: &mut Vec<Check>,
    scheme: &'static str,
    property: &'static str,
    bound: impl Into<String>,
    measured: impl Into<String>,
    holds: bool,
) {
    out.push(Check { scheme, property, bound: bound.into(), measured: measured.into(), holds });
}

fn test_graph(seed: u64) -> CsrGraph {
    generators::planted_triangles(&generators::erdos_renyi(1500, 4500, seed), 3000, seed ^ 1)
}

fn main() {
    let seed = 0x7AB3;
    let mut checks: Vec<Check> = Vec::new();

    // ---------------- EO p-1-Triangle Reduction row ----------------------
    {
        let g = test_graph(seed);
        let p = 1.0;
        let r = triangle_reduce(&g, TrConfig::edge_once_1(p), seed);
        let h = &r.graph;

        // |V| unchanged.
        check(
            &mut checks,
            "EO p-1-TR",
            "|V|",
            "n",
            format!("{} -> {}", g.num_vertices(), h.num_vertices()),
            g.num_vertices() == h.num_vertices(),
        );
        // #CC preserved (deterministic under edge-disjoint reduction).
        let c0 = cc::connected_components(&g).num_components;
        let c1 = cc::connected_components(h).num_components;
        check(&mut checks, "EO p-1-TR", "#CC", "= C", format!("{c0} -> {c1}"), c0 == c1);
        // Shortest path stretch <= 2 (here: from a fixed root).
        let d0 = sssp::dijkstra(&g, 0);
        let d1 = sssp::dijkstra(h, 0);
        let stretch_ok = d0
            .iter()
            .zip(&d1)
            .all(|(a, b)| !a.is_finite() || (b.is_finite() && *b <= 2.0 * *a + 1e-9));
        check(&mut checks, "EO p-1-TR", "s-t path", "<= 2P", "all pairs from root", stretch_ok);
        // Diameter <= 2D (via double sweep lower bounds both sides).
        let dd0 = diameter::diameter_double_sweep(&g, 0);
        let dd1 = diameter::diameter_double_sweep(h, 0);
        check(
            &mut checks,
            "EO p-1-TR",
            "Diameter",
            "<= 2D (+slack)",
            format!("{dd0} -> {dd1}"),
            dd1 as f64 <= 2.0 * dd0 as f64 + 2.0,
        );
        // Max degree >= d/2.
        check(
            &mut checks,
            "EO p-1-TR",
            "Max degree",
            ">= d/2",
            format!("{} -> {}", g.max_degree(), h.max_degree()),
            h.max_degree() * 2 >= g.max_degree(),
        );
        // Matching >= 2/3 MC (expectation; use best-of greedy as estimate).
        let m0 = matching::best_greedy_matching(&g, 5, seed).size();
        let m1 = matching::best_greedy_matching(h, 5, seed).size();
        check(
            &mut checks,
            "EO p-1-TR",
            "Matching",
            ">= (2/3) MC (expect., slack 0.6)",
            format!("{m0} -> {m1}"),
            m1 as f64 >= 0.6 * m0 as f64,
        );
        // Coloring number >= CG/3 (expectation): greedy coloring proxy.
        let col0 = coloring::greedy_coloring(&g).num_colors;
        let col1 = coloring::greedy_coloring(h).num_colors;
        check(
            &mut checks,
            "EO p-1-TR",
            "Coloring",
            ">= CG/3 (proxy)",
            format!("{col0} -> {col1}"),
            col1 as f64 >= col0 as f64 / 3.0 - 1.0,
        );
        // Triangles <= (1 - p/d)T — weaker sanity: T decreases.
        let t0 = tc::count_triangles(&g);
        let t1 = tc::count_triangles(h);
        check(&mut checks, "EO p-1-TR", "#Triangles", "<= T", format!("{t0} -> {t1}"), t1 <= t0);
        // MST weight preserved with max-weight choice.
        let gw = generators::with_random_weights(&g, 1.0, 100.0, seed ^ 2);
        let w0 = mst::minimum_spanning_forest(&gw).total_weight;
        let rw = triangle_reduce(&gw, TrConfig::max_weight(1.0), seed);
        let w1 = mst::minimum_spanning_forest(&rw.graph).total_weight;
        check(
            &mut checks,
            "EO p-1-TR (maxw)",
            "MST weight",
            "= W exactly",
            format!("{w0:.1} -> {w1:.1}"),
            (w0 - w1).abs() < 1e-3,
        );
    }

    // ---------------- Simple p-sampling row -------------------------------
    {
        let g = test_graph(seed ^ 3);
        let p = 0.3;
        let r = uniform_sample(&g, p, seed);
        let h = &r.graph;
        check(
            &mut checks,
            "Uniform p",
            "|E|",
            "(1-p)m ±3%",
            format!("{} -> {}", g.num_edges(), h.num_edges()),
            (h.num_edges() as f64 - (1.0 - p) * g.num_edges() as f64).abs()
                < 0.03 * g.num_edges() as f64,
        );
        let d0 = g.average_degree();
        let d1 = h.average_degree();
        check(
            &mut checks,
            "Uniform p",
            "Avg degree",
            "(1-p)d ±5%",
            format!("{d0:.2} -> {d1:.2}"),
            (d1 - (1.0 - p) * d0).abs() < 0.05 * d0,
        );
        let t0 = tc::count_triangles(&g) as f64;
        let t1 = tc::count_triangles(h) as f64;
        check(
            &mut checks,
            "Uniform p",
            "#Triangles",
            "(1-p)^3 T ±15%",
            format!("{t0} -> {t1}"),
            (t1 - (1.0f64 - p).powi(3) * t0).abs() < 0.15 * t0.max(1.0),
        );
        let c0 = cc::connected_components(&g).num_components;
        let c1 = cc::connected_components(h).num_components;
        check(
            &mut checks,
            "Uniform p",
            "#CC",
            "<= C + pm",
            format!("{c0} -> {c1}"),
            c1 as f64 <= c0 as f64 + p * g.num_edges() as f64,
        );
        let is0 = mis::best_greedy_mis(&g, 3, seed).len();
        let is1 = mis::best_greedy_mis(h, 3, seed).len();
        check(
            &mut checks,
            "Uniform p",
            "Max indep. set",
            "non-decreasing (proxy)",
            format!("{is0} -> {is1}"),
            is1 + is0 / 20 >= is0, // greedy proxy: allow 5% noise
        );
        let m0 = matching::best_greedy_matching(&g, 3, seed).size();
        let m1 = matching::best_greedy_matching(h, 3, seed).size();
        check(
            &mut checks,
            "Uniform p",
            "Matching",
            ">= (1-p)MC (slack 5%)",
            format!("{m0} -> {m1}"),
            m1 as f64 >= (1.0 - p) * m0 as f64 * 0.95,
        );
    }

    // ---------------- Spectral sparsifier row -----------------------------
    {
        let g = generators::barabasi_albert(3000, 6, seed ^ 4);
        let r = spectral_sparsify(&g, 0.6, UpsilonVariant::LogN, true, seed);
        let h = &r.graph;
        let c0 = cc::connected_components(&g).num_components;
        let c1 = cc::connected_components(h).num_components;
        check(
            &mut checks,
            "Spectral",
            "#CC",
            "= C w.h.p. (slack +2)",
            format!("{c0} -> {c1}"),
            c1 <= c0 + 2,
        );
        check(
            &mut checks,
            "Spectral",
            "Max degree",
            ">= d/2(1+eps) [weighted]",
            format!("{} -> {}", g.max_degree(), h.max_degree()),
            // Weighted degree of the max-degree vertex stays within 2x:
            // each kept edge has weight 1/p_e, unbiased per vertex.
            weighted_degree_ok(&g, h),
        );
        check(
            &mut checks,
            "Spectral",
            "|E|",
            "O~(n/eps^2): sub-linear vs m",
            format!("{} -> {}", g.num_edges(), h.num_edges()),
            h.num_edges() < g.num_edges(),
        );
    }

    // ---------------- O(k)-spanner row -------------------------------------
    {
        let g = generators::rmat_graph500(12, 10, seed ^ 5);
        let k = 8.0;
        let r = spanner(&g, k, seed);
        let h = &r.graph;
        let c0 = cc::connected_components(&g).num_components;
        let c1 = cc::connected_components(h).num_components;
        check(&mut checks, "Spanner k", "#CC", "= C", format!("{c0} -> {c1}"), c0 == c1);
        let d0 = sssp::dijkstra(&g, sg_bench::densest_vertex(&g));
        let d1 = sssp::dijkstra(h, sg_bench::densest_vertex(&g));
        let bound = 2.0 * k * (g.num_vertices() as f64).ln();
        let stretch_ok = d0
            .iter()
            .zip(&d1)
            .all(|(a, b)| !a.is_finite() || (b.is_finite() && *b <= bound * a.max(1.0)));
        check(
            &mut checks,
            "Spanner k",
            "s-t path",
            "O(k log n) stretch",
            "all pairs from hub",
            stretch_ok,
        );
        check(
            &mut checks,
            "Spanner k",
            "Max degree",
            "<= d",
            format!("{} -> {}", g.max_degree(), h.max_degree()),
            h.max_degree() <= g.max_degree(),
        );
        let t0 = tc::count_triangles(&g);
        let t1 = tc::count_triangles(h);
        check(
            &mut checks,
            "Spanner k",
            "#Triangles",
            "O(n^{1+2/k}): strong drop",
            format!("{t0} -> {t1}"),
            t1 < t0 / 2,
        );
    }

    // ---------------- remove k deg-1 vertices row --------------------------
    {
        // k = 1 preferential attachment yields a tree-like graph with many
        // degree-1 leaves — the kernel's target population.
        let g = generators::planted_triangles(
            &generators::barabasi_albert(2000, 1, seed ^ 6),
            200,
            seed ^ 7,
        );
        let r = remove_low_degree(&g, seed);
        let h = &r.graph;
        let k = g.num_vertices() - h.num_vertices();
        check(
            &mut checks,
            "remove deg<=1",
            "|V|,|E|",
            "n-k, m-k' (k'<=k)",
            format!("k={k}, m {} -> {}", g.num_edges(), h.num_edges()),
            h.num_edges() + k >= g.num_edges(),
        );
        check(
            &mut checks,
            "remove deg<=1",
            "Max degree",
            "<= d",
            format!("{} -> {}", g.max_degree(), h.max_degree()),
            h.max_degree() <= g.max_degree(),
        );
        let t0 = tc::count_triangles(&g);
        let t1 = tc::count_triangles(h);
        check(&mut checks, "remove deg<=1", "#Triangles", "= T", format!("{t0} -> {t1}"), t0 == t1);
        let dd0 = diameter::diameter_double_sweep(&g, 0);
        let dd1 = diameter::diameter_double_sweep(h, 0);
        check(
            &mut checks,
            "remove deg<=1",
            "Diameter",
            ">= D - 2",
            format!("{dd0} -> {dd1}"),
            dd1 + 2 >= dd0.saturating_sub(2),
        );
    }

    // ---------------- Lossy eps-summary row --------------------------------
    {
        let g = generators::watts_strogatz(1200, 5, 0.05, seed ^ 7);
        let eps = 0.1;
        let s = summarize(&g, SummarizationConfig { epsilon: eps, max_iterations: 8, seed });
        let err = s.reconstruction_error(&g) as f64;
        let bound = 2.0 * eps * g.num_edges() as f64;
        check(
            &mut checks,
            "eps-summary",
            "|E|",
            "m +/- 2 eps m",
            format!("sym.diff {err} vs bound {bound:.0}"),
            err <= bound + 1e-9,
        );
    }

    // ---------------- Render -------------------------------------------------
    if json_requested() {
        let records: Vec<BenchRecord> = checks
            .iter()
            .map(|c| BenchRecord {
                workload: "tab3-suite".into(),
                label: format!("{} / {}", c.scheme, c.property),
                params: vec![
                    ("bound".into(), c.bound.clone()),
                    ("measured".into(), c.measured.clone()),
                    ("verdict".into(), if c.holds { "OK".into() } else { "VIOLATED".into() }),
                ],
                ratio: None,
                timings_ms: Vec::new(),
            })
            .collect();
        println!("{}", render_json(&records));
        let violations = checks.iter().filter(|c| !c.holds).count();
        if violations > 0 {
            std::process::exit(1);
        }
        return;
    }
    println!("== Table 3: bound validation ==\n");
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.scheme.to_string(),
                c.property.to_string(),
                c.bound.clone(),
                c.measured.clone(),
                if c.holds { "OK".into() } else { "VIOLATED".into() },
            ]
        })
        .collect();
    println!("{}", render_table(&["scheme", "property", "bound", "measured", "verdict"], &rows));
    let violations = checks.iter().filter(|c| !c.holds).count();
    println!("{} checks, {} violations", checks.len(), violations);
    if violations > 0 {
        std::process::exit(1);
    }
}

/// Weighted max degree of the sparsifier should be within 2x of the
/// original degree at the original max-degree vertex.
fn weighted_degree_ok(g: &CsrGraph, h: &CsrGraph) -> bool {
    let v = sg_bench::densest_vertex(g);
    let orig = g.degree(v) as f64;
    let weighted: f64 = h.neighbor_edge_ids(v).iter().map(|&e| h.edge_weight(e) as f64).sum();
    weighted >= orig / 2.5 && weighted <= orig * 2.5
}
