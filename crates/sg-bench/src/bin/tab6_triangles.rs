//! E4 — Table 6: average number of triangles per vertex after compression.
//!
//! Twelve graphs × {TR, uniform sampling, spanners, spectral} parameter
//! grid. Expected shape (paper §7.2): TR reduces T strongly with p; uniform
//! sampling scales T by (1-p)^3; spanners (especially large k) eliminate
//! most cycles; spectral with small p keeps few triangles.
//!
//! Run: `cargo run --release -p sg-bench --bin tab6_triangles`

use sg_algos::tc::count_triangles;
use sg_bench::{render_table, scheme};
use sg_core::{CompressionScheme, SchemeRegistry};
use sg_graph::generators::presets;
use sg_graph::CsrGraph;

fn tpv(g: &CsrGraph) -> f64 {
    count_triangles(g) as f64 / g.num_vertices().max(1) as f64
}

fn main() {
    let seed = 0x7AB6;
    let registry = SchemeRegistry::with_defaults();
    let schemes: Vec<(&str, Box<dyn CompressionScheme>)> = vec![
        ("0.2-1-TR", scheme(&registry, "tr", &[("p", "0.2")])),
        ("0.9-1-TR", scheme(&registry, "tr", &[("p", "0.9")])),
        ("Unif(0.8)", scheme(&registry, "uniform", &[("p", "0.8")])),
        ("Unif(0.5)", scheme(&registry, "uniform", &[("p", "0.5")])),
        ("Unif(0.2)", scheme(&registry, "uniform", &[("p", "0.2")])),
        ("Span(k=2)", scheme(&registry, "spanner", &[("k", "2")])),
        ("Span(k=16)", scheme(&registry, "spanner", &[("k", "16")])),
        ("Span(k=128)", scheme(&registry, "spanner", &[("k", "128")])),
        ("Spec(0.5)", scheme(&registry, "spectral", &[("p", "0.5")])),
        ("Spec(0.05)", scheme(&registry, "spectral", &[("p", "0.05")])),
        ("Spec(0.005)", scheme(&registry, "spectral", &[("p", "0.005")])),
    ];
    let mut headers: Vec<&str> = vec!["graph", "Original"];
    headers.extend(schemes.iter().map(|&(n, _)| n));

    println!("== Table 6: average triangles per vertex ==\n");
    let mut rows = Vec::new();
    for (name, g) in presets::table6_suite() {
        let mut row = vec![name.to_string(), format!("{:.3}", tpv(&g))];
        for (_, scheme) in &schemes {
            let r = scheme.apply(&g, seed);
            row.push(format!("{:.3}", tpv(&r.graph)));
        }
        rows.push(row);
        eprintln!("done: {name}");
    }
    println!("{}", render_table(&headers, &rows));
}
