//! E4 — Table 6: average number of triangles per vertex after compression.
//!
//! Twelve graphs × {TR, uniform sampling, spanners, spectral} parameter
//! grid. Expected shape (paper §7.2): TR reduces T strongly with p; uniform
//! sampling scales T by (1-p)^3; spanners (especially large k) eliminate
//! most cycles; spectral with small p keeps few triangles.
//!
//! Run: `cargo run --release -p sg-bench --bin tab6_triangles`

use sg_algos::tc::count_triangles;
use sg_bench::render_table;
use sg_core::schemes::{TrConfig, UpsilonVariant};
use sg_core::Scheme;
use sg_graph::generators::presets;
use sg_graph::CsrGraph;

fn tpv(g: &CsrGraph) -> f64 {
    count_triangles(g) as f64 / g.num_vertices().max(1) as f64
}

fn main() {
    let seed = 0x7AB6;
    let schemes: Vec<(&str, Scheme)> = vec![
        ("0.2-1-TR", Scheme::TriangleReduction(TrConfig::plain_1(0.2))),
        ("0.9-1-TR", Scheme::TriangleReduction(TrConfig::plain_1(0.9))),
        ("Unif(0.8)", Scheme::Uniform { p: 0.8 }),
        ("Unif(0.5)", Scheme::Uniform { p: 0.5 }),
        ("Unif(0.2)", Scheme::Uniform { p: 0.2 }),
        ("Span(k=2)", Scheme::Spanner { k: 2.0 }),
        ("Span(k=16)", Scheme::Spanner { k: 16.0 }),
        ("Span(k=128)", Scheme::Spanner { k: 128.0 }),
        ("Spec(0.5)", Scheme::Spectral { p: 0.5, variant: UpsilonVariant::LogN, reweight: false }),
        ("Spec(0.05)", Scheme::Spectral { p: 0.05, variant: UpsilonVariant::LogN, reweight: false }),
        ("Spec(0.005)", Scheme::Spectral { p: 0.005, variant: UpsilonVariant::LogN, reweight: false }),
    ];
    let mut headers: Vec<&str> = vec!["graph", "Original"];
    headers.extend(schemes.iter().map(|&(n, _)| n));

    println!("== Table 6: average triangles per vertex ==\n");
    let mut rows = Vec::new();
    for (name, g) in presets::table6_suite() {
        let mut row = vec![name.to_string(), format!("{:.3}", tpv(&g))];
        for (_, scheme) in &schemes {
            let r = scheme.apply(&g, seed);
            row.push(format!("{:.3}", tpv(&r.graph)));
        }
        rows.push(row);
        eprintln!("done: {name}");
    }
    println!("{}", render_table(&headers, &rows));
}
