//! E4 — Table 6: average number of triangles per vertex after compression.
//!
//! Twelve graphs × {TR, uniform sampling, spanners, spectral} parameter
//! grid. Expected shape (paper §7.2): TR reduces T strongly with p; uniform
//! sampling scales T by (1-p)^3; spanners (especially large k) eliminate
//! most cycles; spectral with small p keeps few triangles.
//!
//! Run: `cargo run --release -p sg-bench --bin tab6_triangles`

use sg_algos::tc::count_triangles;
use sg_bench::{json_requested, render_json, render_table, scheme, BenchRecord};
use sg_core::{CompressionScheme, SchemeRegistry};
use sg_graph::generators::presets;
use sg_graph::CsrGraph;

fn tpv(g: &CsrGraph) -> f64 {
    count_triangles(g) as f64 / g.num_vertices().max(1) as f64
}

fn main() {
    let json = json_requested();
    let seed = 0x7AB6;
    let registry = SchemeRegistry::with_defaults();
    let schemes: Vec<(&str, Box<dyn CompressionScheme>)> = vec![
        ("0.2-1-TR", scheme(&registry, "tr", &[("p", "0.2")])),
        ("0.9-1-TR", scheme(&registry, "tr", &[("p", "0.9")])),
        ("Unif(0.8)", scheme(&registry, "uniform", &[("p", "0.8")])),
        ("Unif(0.5)", scheme(&registry, "uniform", &[("p", "0.5")])),
        ("Unif(0.2)", scheme(&registry, "uniform", &[("p", "0.2")])),
        ("Span(k=2)", scheme(&registry, "spanner", &[("k", "2")])),
        ("Span(k=16)", scheme(&registry, "spanner", &[("k", "16")])),
        ("Span(k=128)", scheme(&registry, "spanner", &[("k", "128")])),
        ("Spec(0.5)", scheme(&registry, "spectral", &[("p", "0.5")])),
        ("Spec(0.05)", scheme(&registry, "spectral", &[("p", "0.05")])),
        ("Spec(0.005)", scheme(&registry, "spectral", &[("p", "0.005")])),
    ];
    let mut headers: Vec<&str> = vec!["graph", "Original"];
    headers.extend(schemes.iter().map(|&(n, _)| n));

    if !json {
        println!("== Table 6: average triangles per vertex ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in presets::table6_suite() {
        let original = tpv(&g);
        let mut row = vec![name.to_string(), format!("{original:.3}")];
        for (_, scheme) in &schemes {
            let r = scheme.apply(&g, seed);
            let after = tpv(&r.graph);
            row.push(format!("{after:.3}"));
            records.push(BenchRecord {
                workload: name.to_string(),
                label: scheme.label(),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("tpv_before".into(), format!("{original:.3}")),
                    ("tpv_after".into(), format!("{after:.3}")),
                ],
                ratio: Some(r.compression_ratio()),
                timings_ms: Vec::new(),
            });
        }
        rows.push(row);
        eprintln!("done: {name}");
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&headers, &rows));
}
