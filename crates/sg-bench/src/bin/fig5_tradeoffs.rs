//! E1 — Figure 5: storage and performance trade-offs of lossy compression.
//!
//! For three graphs spanning the paper's triangles-per-vertex regimes
//! (s-cds-, s-pok-, v-ewk-like) and each kernel class, sweeps the
//! compression parameter and reports (a) the compression ratio m'/m (the
//! figure's color scale) and (b) the relative runtime difference of BFS,
//! CC, PR and TC over compressed vs original graphs (the figure's y-axis).
//!
//! Run: `cargo run --release -p sg-bench --bin fig5_tradeoffs`

use sg_bench::{
    f3, json_requested, relative_runtime_diff, render_json, render_table, run_algorithm, scheme,
    BenchRecord, FIG5_ALGORITHMS,
};
use sg_core::{CompressionScheme, SchemeRegistry};
use sg_graph::generators::presets;

#[allow(clippy::vec_init_then_push)]
fn main() {
    let json = json_requested();
    let mut records = Vec::new();
    let suite = presets::fig5_suite();
    let seed = 0xF15;
    let registry = SchemeRegistry::with_defaults();
    let sweep = |name: &str, key: &str, values: &[f64]| -> Vec<Box<dyn CompressionScheme>> {
        values.iter().map(|v| scheme(&registry, name, &[(key, &v.to_string())])).collect()
    };

    let mut sections: Vec<(&str, Vec<Box<dyn CompressionScheme>>)> = Vec::new();
    sections.push((
        "Edge kernels: spectral sparsification (p log(n) variant)",
        sweep("spectral", "p", &[0.005, 0.01, 0.05, 0.1, 0.5]),
    ));
    sections.push((
        "Edge kernels: random uniform sampling",
        sweep("uniform", "p", &[0.1, 0.3, 0.5, 0.7, 0.9]),
    ));
    sections.push((
        "Triangle kernels: Triangle p-1-Reduction",
        sweep("tr", "p", &[0.1, 0.3, 0.5, 0.7, 0.9]),
    ));
    sections
        .push(("Subgraph kernels: O(k)-spanners", sweep("spanner", "k", &[2.0, 8.0, 32.0, 128.0])));
    sections.push((
        "Subgraph kernels: lossy summarization (error bound eps)",
        sweep("summary", "epsilon", &[0.0, 0.1, 0.4, 0.7]),
    ));

    for (title, schemes) in sections {
        if !json {
            println!("\n== Figure 5 panel: {title} ==\n");
        }
        let mut rows = Vec::new();
        for (gname, g) in &suite {
            // Baseline stage-2 runtimes on the original graph.
            let base: Vec<_> = FIG5_ALGORITHMS.iter().map(|a| run_algorithm(a, g)).collect();
            for scheme in &schemes {
                let r = scheme.apply(g, seed);
                let mut row = vec![gname.to_string(), scheme.label(), f3(r.compression_ratio())];
                let mut params = vec![("seed".to_string(), seed.to_string())];
                let mut timings = vec![("compress".to_string(), r.elapsed.as_secs_f64() * 1e3)];
                for (i, a) in FIG5_ALGORITHMS.iter().enumerate() {
                    let t = run_algorithm(a, &r.graph);
                    let d = relative_runtime_diff(base[i], t);
                    row.push(f3(d));
                    params.push((format!("d{a}"), f3(d)));
                    timings.push((a.to_string(), t.as_secs_f64() * 1e3));
                }
                records.push(BenchRecord {
                    workload: gname.to_string(),
                    label: scheme.label(),
                    params,
                    ratio: Some(r.compression_ratio()),
                    timings_ms: timings,
                });
                rows.push(row);
            }
        }
        if !json {
            println!(
                "{}",
                render_table(&["graph", "scheme", "m'/m", "dBFS", "dCC", "dPR", "dTC"], &rows)
            );
        }
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("(d<alg> = relative runtime difference vs the uncompressed graph; positive = faster)");
}
