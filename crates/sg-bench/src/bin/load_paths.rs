//! Load-path benchmark: the cost of getting a graph from disk into an
//! algorithm-ready CSR across the three storage formats.
//!
//! * `text` — parse a whitespace edge list, canonicalize, rebuild CSR;
//! * `bin`  — decode the compact binary edge list, rebuild CSR;
//! * `sgr (heap)` — decode the `.sgr` CSR container into owned arrays
//!   (no CSR rebuild, one copy);
//! * `sgr (mmap)` — map the `.sgr` file read-only and borrow the CSR
//!   arrays in place (no rebuild, no copy; the reported time includes the
//!   checksum + structural-validation pass, the only O(file) work left).
//!
//! Run: `cargo run --release -p sg-bench --bin load_paths
//!       [-- --n N] [--k N] [--runs N] [--json]`

use sg_bench::{json_requested, median_time, ms, render_json, render_table, BenchRecord};
use sg_graph::{generators, io, CsrGraph};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut n: usize = 200_000;
    let mut k: usize = 8;
    let mut runs: usize = 3;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--{what} needs an integer value"))
        };
        match flag.as_str() {
            "--n" => n = grab("n"),
            "--k" => k = grab("k"),
            "--runs" => runs = grab("runs"),
            "--json" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    let json = json_requested();
    let workload = format!("ba-n{n}-k{k}");

    let g = generators::barabasi_albert(n, k, 0x10AD);
    let dir = std::env::temp_dir().join("sg-bench-load-paths");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = |ext: &str| -> PathBuf { dir.join(format!("{workload}.{ext}")) };
    io::save_text(&g, path("txt")).expect("write text");
    io::save_binary(&g, path("bin")).expect("write bin");
    sg_store::save_sgr(&g, path("sgr")).expect("write sgr");

    type Loader = (&'static str, &'static str, fn(&PathBuf) -> CsrGraph);
    let loaders: [Loader; 4] = [
        ("load:text", "txt", |p| io::load_text(p).expect("text load")),
        ("load:bin", "bin", |p| io::load_binary(p).expect("bin load")),
        ("load:sgr-heap", "sgr", |p| sg_store::load_sgr(p).expect("sgr heap load")),
        ("load:sgr-mmap", "sgr", |p| {
            sg_store::MmapGraph::open(p).expect("sgr mmap load").into_graph()
        }),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut base: Option<Duration> = None;
    for (label, ext, load) in loaders {
        let p = path(ext);
        let loaded = load(&p);
        assert_eq!(loaded.num_edges(), g.num_edges(), "{label} must load the same graph");
        let t = median_time(runs, || {
            load(&p);
        });
        let baseline = *base.get_or_insert(t);
        let bytes = std::fs::metadata(&p).expect("stat").len();
        rows.push(vec![
            label.to_string(),
            bytes.to_string(),
            ms(t),
            format!("{:.1}x", baseline.as_secs_f64() / t.as_secs_f64().max(1e-12)),
        ]);
        records.push(BenchRecord {
            workload: workload.clone(),
            label: label.to_string(),
            params: vec![
                ("n".into(), n.to_string()),
                ("k".into(), k.to_string()),
                ("file_bytes".into(), bytes.to_string()),
            ],
            ratio: None,
            timings_ms: vec![("load".into(), t.as_secs_f64() * 1e3)],
        });
    }

    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("workload: {workload}, n = {}, m = {}\n", g.num_vertices(), g.num_edges());
    println!("{}", render_table(&["path", "file bytes", "median ms", "vs text"], &rows));
    println!("(sgr-mmap pays only checksum + validation; no edge-list rebuild, no copy)");
}
