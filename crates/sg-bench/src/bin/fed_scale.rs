//! E11 — federation overhead: an in-process coordinator + two worker
//! daemons on loopback serving federated `compress` requests, vs the
//! same requests on a standalone daemon. Measures the wire + fan-out +
//! merge overhead of distributing a single-stage plan; digests are
//! asserted equal, so the comparison is between bit-identical results.
//!
//! Run: `cargo run --release -p sg-bench --bin fed_scale`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_graph::generators;
use sg_serve::{Client, FedConfig, Json, ServeConfig, Server};
use std::time::Instant;

type Daemon = (String, std::thread::JoinHandle<std::io::Result<()>>);

fn spawn(federation: Option<FedConfig>) -> Daemon {
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        federation,
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(daemons: Vec<Daemon>) {
    for (addr, handle) in daemons {
        let mut client = Client::connect(&addr).expect("connect for shutdown");
        client.request(&Client::request_for("shutdown")).expect("shutdown");
        handle.join().expect("daemon thread").expect("daemon exit");
    }
}

/// One timed compress; returns (wall ms, server total_ms, checksum).
fn compress(client: &mut Client, spec: &str, seed: u64) -> (f64, f64, String) {
    let started = Instant::now();
    let response = client
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("g"))
                .with("spec", Json::str(spec))
                .with("seed", Json::u64(seed)),
        )
        .expect("compress");
    let wall = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "compress failed: {}",
        response.render()
    );
    let total = response.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let checksum = response.get("checksum").and_then(Json::as_str).unwrap_or("").to_string();
    (wall, total, checksum)
}

fn main() {
    let g = generators::planted_triangles(&generators::barabasi_albert(8_000, 8, 71), 3000, 17);
    let dir = std::env::temp_dir().join("slimgraph-fed-scale");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sgr = dir.join("fed-scale.sgr").to_string_lossy().into_owned();
    sg_store::save_sgr(&g, &sgr).expect("write input");

    let json = json_requested();
    if !json {
        println!("== fed_scale: coordinator + 2 workers vs standalone ==\n");
    }

    let standalone = spawn(None);
    let worker_a = spawn(None);
    let worker_b = spawn(None);
    let coordinator = spawn(Some(FedConfig {
        workers: vec![worker_a.0.clone(), worker_b.0.clone()],
        ..FedConfig::default()
    }));

    let mut solo = Client::connect(&standalone.0).expect("connect standalone");
    let mut fed = Client::connect(&coordinator.0).expect("connect coordinator");
    for client in [&mut solo, &mut fed] {
        let response = client
            .request(
                &Client::request_for("load")
                    .with("name", Json::str("g"))
                    .with("path", Json::str(&sgr)),
            )
            .expect("load");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (spec, seed) in [("uniform:p=0.5", 7u64), ("tr:p=0.6", 9), ("lowdeg", 3)] {
        // Warm-up federates the lazy worker-side loads out of the measurement.
        compress(&mut fed, spec, seed);
        let (solo_wall, _, solo_sum) = compress(&mut solo, spec, seed);
        let (fed_wall, fed_total, fed_sum) = compress(&mut fed, spec, seed);
        assert_eq!(solo_sum, fed_sum, "{spec}: federated digest != standalone digest");
        rows.push(vec![
            spec.to_string(),
            format!("{solo_wall:.1}"),
            format!("{fed_wall:.1}"),
            format!("{:.2}", fed_wall / solo_wall.max(1e-9)),
        ]);
        records.push(BenchRecord {
            workload: "ba-8k-planted".to_string(),
            label: format!("fed:{spec}"),
            params: vec![
                ("seed".into(), seed.to_string()),
                ("shards".into(), "2".into()),
                ("checksum".into(), fed_sum),
            ],
            ratio: None,
            timings_ms: vec![
                ("standalone_wall".into(), solo_wall),
                ("federated_wall".into(), fed_wall),
                ("federated_server".into(), fed_total),
            ],
        });
        eprintln!("done: {spec}");
    }
    shutdown(vec![coordinator, worker_a, worker_b, standalone]);

    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!("{}", render_table(&["spec", "standalone ms", "federated ms", "overhead x"], &rows));
    println!("(both columns serve bit-identical results — the digests are asserted");
    println!(" equal — so overhead is pure wire + fan-out + merge cost)");
}
