//! E12 — §7.2: reordered-pairs metric for BC and TC-per-vertex.
//!
//! Compares schemes that remove the *same number of edges* (in
//! expectation), as the paper prescribes for this metric. Expected shape:
//! spectral sparsification preserves per-vertex triangle-count ordering
//! better than uniform sampling at the same edge budget.
//!
//! Run: `cargo run --release -p sg-bench --bin reordered_pairs`

use sg_algos::{bc, tc};
use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::schemes::{spectral_sparsify, uniform_sample, UpsilonVariant};
use sg_graph::generators::presets;
use sg_metrics::{reordered_neighbor_fraction, reordered_pair_fraction};

fn main() {
    let json = json_requested();
    let seed = 0x12E0;
    if !json {
        println!("== Reordered pairs after equal-budget compression ==\n");
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, g) in [("s-pok", presets::s_pok_like()), ("l-dbl", presets::l_dbl_like())] {
        // Fix the edge budget with spectral, then match uniform to it.
        let spec = spectral_sparsify(&g, 0.4, UpsilonVariant::LogN, false, seed);
        let budget = spec.edge_reduction();
        let unif = uniform_sample(&g, budget, seed ^ 1);

        // TC per vertex ordering.
        let tc0: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
        let tc_spec: Vec<f64> =
            tc::triangles_per_vertex(&spec.graph).iter().map(|&x| x as f64).collect();
        let tc_unif: Vec<f64> =
            tc::triangles_per_vertex(&unif.graph).iter().map(|&x| x as f64).collect();

        // BC ordering (sampled sources to keep runtime sane).
        let sources = 64;
        let bc0 = bc::betweenness_sampled(&g, sources, seed);
        let bc_spec = bc::betweenness_sampled(&spec.graph, sources, seed);
        let bc_unif = bc::betweenness_sampled(&unif.graph, sources, seed);

        for (label, r, tc_after, bc_after) in [
            ("spectral (matched budget)", &spec, &tc_spec, &bc_spec),
            ("uniform (matched budget)", &unif, &tc_unif, &bc_unif),
        ] {
            records.push(BenchRecord {
                workload: name.to_string(),
                label: label.to_string(),
                params: vec![
                    ("seed".into(), seed.to_string()),
                    ("budget_removed".into(), format!("{budget:.4}")),
                    ("tc_flips".into(), format!("{:.4}", reordered_pair_fraction(&tc0, tc_after))),
                    ("bc_flips".into(), format!("{:.4}", reordered_pair_fraction(&bc0, bc_after))),
                    (
                        "tc_nbr_flips".into(),
                        format!("{:.4}", reordered_neighbor_fraction(&g, &tc0, tc_after)),
                    ),
                ],
                ratio: Some(r.compression_ratio()),
                timings_ms: Vec::new(),
            });
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.0}%", budget * 100.0),
            format!("{:.4}", reordered_pair_fraction(&tc0, &tc_spec)),
            format!("{:.4}", reordered_pair_fraction(&tc0, &tc_unif)),
            format!("{:.4}", reordered_pair_fraction(&bc0, &bc_spec)),
            format!("{:.4}", reordered_pair_fraction(&bc0, &bc_unif)),
            format!("{:.4}", reordered_neighbor_fraction(&g, &tc0, &tc_spec)),
            format!("{:.4}", reordered_neighbor_fraction(&g, &tc0, &tc_unif)),
        ]);
        eprintln!("done: {name}");
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(
            &[
                "graph",
                "edges removed",
                "TC flips spec",
                "TC flips unif",
                "BC flips spec",
                "BC flips unif",
                "nbr TC spec",
                "nbr TC unif",
            ],
            &rows
        )
    );
    println!("(flip fractions: |PRE|/n^2 for full metric, per-edge for the neighbor variant;");
    println!(" expected: spectral < uniform for TC ordering at equal budget)");
}
