//! E8 — Table 2: scheme overview — remaining edges vs the closed forms,
//! weighted/directed support, and compression storage.
//!
//! Run: `cargo run --release -p sg-bench --bin tab2_overview`

use sg_bench::{json_requested, render_json, render_table, scheme, BenchRecord};
use sg_core::schemes::{summarize, SummarizationConfig};
use sg_core::{CompressionScheme, SchemeRegistry};
use sg_graph::generators;

fn main() {
    let json = json_requested();
    let seed = 0x7AB2;
    let g = generators::planted_triangles(&generators::rmat_graph500(13, 10, seed), 20_000, seed);
    let n = g.num_vertices() as f64;
    let m = g.num_edges() as f64;
    let t = sg_algos::tc::count_triangles(&g) as f64;
    if !json {
        println!("workload: n = {n}, m = {m}, T = {t}\n");
    }

    let p = 0.4;
    let k = 8.0;
    let eps = 0.1;
    let registry = SchemeRegistry::with_defaults();
    let p_s = p.to_string();
    let k_s = k.to_string();
    let eps_s = eps.to_string();
    let rows: Vec<(Box<dyn CompressionScheme>, String)> = vec![
        (
            scheme(&registry, "spectral", &[("p", &p_s), ("reweight", "true")]),
            "prop. to max(log n, ...) * n".to_string(),
        ),
        (scheme(&registry, "uniform", &[("p", &p_s)]), format!("(1-p)m = {:.0}", (1.0 - p) * m)),
        (
            scheme(&registry, "tr", &[("p", &p_s)]),
            // §6.1: at least pT/(3d) edges deleted in expectation.
            format!("<= m - pT/(3d) = {:.0}", m - p * t / (3.0 * g.max_degree() as f64)),
        ),
        (
            scheme(&registry, "spanner", &[("k", &k_s)]),
            format!("O(n^(1+1/k) log k) ~ {:.0}", n.powf(1.0 + 1.0 / k)),
        ),
        (
            scheme(&registry, "summary", &[("epsilon", &eps_s)]),
            format!("m +/- 2 eps m = {:.0}±{:.0}", m, 2.0 * eps * m),
        ),
    ];

    let mut table = Vec::new();
    let mut records = Vec::new();
    for (scheme, formula) in rows {
        let r = scheme.apply(&g, seed);
        records.push(BenchRecord {
            workload: "planted-rmat13".into(),
            label: scheme.label(),
            params: vec![
                ("seed".into(), seed.to_string()),
                ("paper_form".into(), formula.clone()),
                ("storage_bytes".into(), r.graph.storage_bytes().to_string()),
            ],
            ratio: Some(r.compression_ratio()),
            timings_ms: vec![("compress".into(), r.elapsed.as_secs_f64() * 1e3)],
        });
        table.push(vec![
            scheme.label(),
            formula,
            format!("{}", r.graph.num_edges()),
            format!("{:.3}", r.compression_ratio()),
            format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
            format!("{}", r.graph.storage_bytes()),
        ]);
    }
    if json {
        println!("{}", render_json(&records));
        return;
    }
    println!(
        "{}",
        render_table(
            &["scheme", "#remaining edges (paper form)", "measured m'", "m'/m", "ms", "bytes"],
            &table
        )
    );

    // Storage accounting of the summary representation itself.
    let s = summarize(&g, SummarizationConfig { epsilon: eps, max_iterations: 6, seed });
    println!(
        "\nsummary representation: {} supervertices, {} superedges, {}+{} corrections, storage {} edge-units vs m = {}",
        s.num_supervertices(),
        s.superedges.len(),
        s.corrections_plus.len(),
        s.corrections_minus.len(),
        s.storage_cost(),
        g.num_edges()
    );
    println!("\nweighted/directed support: spectral W; uniform W,D; TR W; spanner -; summary -");
}
