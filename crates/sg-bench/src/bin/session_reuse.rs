//! Session-API benchmark: cold `Pipeline::apply` vs session runs with a
//! shared [`sg_core::StageCache`], over a request mix whose chains share
//! prefixes (the serving workload `sg-serve` answers).
//!
//! For every spec the binary asserts the session output is **bit-identical**
//! to the cold run (the session contract), then reports both wall times and
//! the stage-skip accounting in the `BenchRecord` schema, so CI tracks the
//! prefix-reuse speedup over time.
//!
//! Run: `cargo run --release -p sg-bench --bin session_reuse
//!       [-- --n N] [--k N] [--json]`

use sg_bench::{json_requested, render_json, render_table, BenchRecord};
use sg_core::{GraphCatalog, PipelineSpec, SchemeRegistry, SgSession};
use sg_graph::generators;
use std::sync::Arc;
use std::time::Instant;

/// A serving-shaped request mix: one chain family (`spanner,lowdeg,…`)
/// with divergent tails, plus an exact repeat.
const SPECS: [&str; 5] = [
    "spanner:k=4,lowdeg,uniform:p=0.5",
    "spanner:k=4,lowdeg,uniform:p=0.3",
    "spanner:k=4,lowdeg,cut:k=2",
    "spanner:k=4,lowdeg,tr-eo:p=0.6",
    "spanner:k=4,lowdeg,uniform:p=0.5", // repeat: fully cached
];

const SEED: u64 = 0x5E55;

fn main() {
    let mut n: usize = 20_000;
    let mut k: usize = 4;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--{what} needs an integer value"))
        };
        match flag.as_str() {
            "--n" => n = grab("n"),
            "--k" => k = grab("k"),
            "--json" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    let json = json_requested();
    let workload = format!("ba-n{n}-k{k}");
    let g = generators::barabasi_albert(n, k, 0xBE);

    let registry = Arc::new(SchemeRegistry::with_defaults());
    let catalog = Arc::new(GraphCatalog::new());
    let handle = catalog.insert("bench", g.clone(), &workload).expect("fresh catalog");
    let session = SgSession::new(catalog, Arc::clone(&registry));

    let mut records = Vec::new();
    let mut rows = Vec::new();
    let (mut cold_total, mut warm_total) = (0.0f64, 0.0f64);
    for (i, spec_text) in SPECS.iter().enumerate() {
        let spec = PipelineSpec::parse(spec_text).expect("spec parses");
        let pipeline = spec.build(&registry).expect("spec builds");

        let start = Instant::now();
        let cold = pipeline.apply(&g, SEED);
        let cold_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let warm = session.run(&handle, &spec, SEED).expect("session runs");
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            warm.graph.edge_slice(),
            cold.result.graph.edge_slice(),
            "session output must be bit-identical to the cold run for {spec_text}"
        );
        cold_total += cold_ms;
        warm_total += warm_ms;

        records.push(BenchRecord {
            workload: workload.clone(),
            label: format!("session:{spec_text}"),
            params: vec![
                ("request".into(), i.to_string()),
                ("stages_cached".into(), warm.stages_cached().to_string()),
                ("stages_executed".into(), warm.stages_executed().to_string()),
            ],
            ratio: Some(warm.compression_ratio()),
            timings_ms: vec![("cold".into(), cold_ms), ("session".into(), warm_ms)],
        });
        rows.push(vec![
            spec_text.to_string(),
            format!("{cold_ms:.2}"),
            format!("{warm_ms:.2}"),
            warm.stages_cached().to_string(),
            warm.stages_executed().to_string(),
        ]);
    }

    if json {
        println!("{}", render_json(&records));
    } else {
        println!(
            "{}",
            render_table(&["spec", "cold ms", "session ms", "cached", "executed"], &rows)
        );
        println!(
            "totals: cold {cold_total:.2} ms, session {warm_total:.2} ms \
             ({:.2}x over the request mix)",
            cold_total / warm_total.max(1e-9)
        );
    }
}
