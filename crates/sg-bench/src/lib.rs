//! # sg-bench — harness utilities shared by the experiment binaries
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (the mapping is in DESIGN.md §4 and EXPERIMENTS.md).
//! This library holds the shared pieces: stage-2 algorithm timing, relative
//! runtime differences (Figure 5's y-axis), and plain-text table rendering.

use sg_algos::{bfs, cc, pagerank, tc};
use sg_core::{CompressionScheme, SchemeParams, SchemeRegistry};
use sg_graph::CsrGraph;
use std::time::{Duration, Instant};

/// Instantiates a registry scheme for an experiment binary, panicking on
/// unknown names or bad parameters (harness code wants loud failures).
pub fn scheme(
    registry: &SchemeRegistry,
    name: &str,
    params: &[(&str, &str)],
) -> Box<dyn CompressionScheme> {
    registry
        .create(name, &SchemeParams::from_pairs(params))
        .unwrap_or_else(|e| panic!("building scheme '{name}': {e}"))
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median wall time of `runs` executions (first run discarded as warmup
/// when `runs > 1`, mirroring the paper's warmup policy).
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 1);
    if runs > 1 {
        f(); // warmup
    }
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let s = Instant::now();
            f();
            s.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The stage-2 algorithm set of Figure 5.
pub const FIG5_ALGORITHMS: [&str; 4] = ["BFS", "CC", "PR", "TC"];

/// Runs one Figure 5 algorithm and returns its wall time.
pub fn run_algorithm(name: &str, g: &CsrGraph) -> Duration {
    match name {
        "BFS" => {
            let root = densest_vertex(g);
            median_time(3, || {
                bfs::bfs_parallel(g, root);
            })
        }
        "CC" => median_time(3, || {
            cc::connected_components(g);
        }),
        "PR" => median_time(3, || {
            pagerank::pagerank(
                g,
                pagerank::PageRankConfig { max_iterations: 20, ..Default::default() },
            );
        }),
        "TC" => median_time(3, || {
            tc::count_triangles(g);
        }),
        other => panic!("unknown algorithm {other}"),
    }
}

/// Root choice for BFS runs: the highest-degree vertex (stable across
/// compression, reached component is large).
pub fn densest_vertex(g: &CsrGraph) -> u32 {
    (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap_or(0)
}

/// Figure 5's y-axis: relative difference between runtimes over the
/// compressed and the original graph (positive = speedup).
pub fn relative_runtime_diff(original: Duration, compressed: Duration) -> f64 {
    let o = original.as_secs_f64();
    if o == 0.0 {
        return 0.0;
    }
    (o - compressed.as_secs_f64()) / o
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One benchmark measurement in the machine-readable schema the experiment
/// binaries emit under `--json` (so CI can track perf/accuracy
/// trajectories): workload, scheme/pipeline label, parameters, compression
/// ratio, and per-stage wall times.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Workload identifier (generator preset or input file).
    pub workload: String,
    /// Scheme/pipeline label (or the measured operation for non-scheme
    /// benchmarks, e.g. `load:mmap`).
    pub label: String,
    /// Parameters as `(key, value)` strings.
    pub params: Vec<(String, String)>,
    /// Compression ratio `m'/m` where applicable.
    pub ratio: Option<f64>,
    /// Per-stage wall times in milliseconds, in execution order.
    pub timings_ms: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Serializes the record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"workload\":\"{}\"", json_escape(&self.workload)));
        out.push_str(&format!(",\"label\":\"{}\"", json_escape(&self.label)));
        out.push_str(",\"params\":{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str("},\"ratio\":");
        out.push_str(&json_number(self.ratio));
        out.push_str(",\"timings_ms\":{");
        for (i, (stage, ms)) in self.timings_ms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(stage), json_number(Some(*ms))));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

/// Renders records as a JSON array, one object per line (log-friendly,
/// still valid JSON for CI consumers).
pub fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// True when the binary was invoked with `--json` (machine-readable output
/// instead of the plain-text table).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Formats a fraction as a fixed-width value.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        assert!(t.contains("long-name"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn algorithms_all_run() {
        let g = generators::erdos_renyi(500, 2000, 1);
        for a in FIG5_ALGORITHMS {
            let d = run_algorithm(a, &g);
            assert!(d.as_nanos() > 0);
        }
    }

    #[test]
    fn scheme_helper_builds_from_registry() {
        let registry = SchemeRegistry::with_defaults();
        let s = scheme(&registry, "uniform", &[("p", "0.3")]);
        assert_eq!(s.name(), "uniform");
        assert_eq!(s.label(), "uniform (p=0.3)");
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn scheme_helper_panics_loudly_on_unknown_names() {
        scheme(&SchemeRegistry::with_defaults(), "nope", &[]);
    }

    #[test]
    fn bench_record_serializes_to_stable_json() {
        let r = BenchRecord {
            workload: "ba-1k".into(),
            label: "uniform (p=0.5)".into(),
            params: vec![("p".into(), "0.5".into()), ("seed".into(), "7".into())],
            ratio: Some(0.5),
            timings_ms: vec![("compress".into(), 12.5), ("pagerank".into(), 3.25)],
        };
        assert_eq!(
            r.to_json(),
            "{\"workload\":\"ba-1k\",\"label\":\"uniform (p=0.5)\",\
             \"params\":{\"p\":\"0.5\",\"seed\":\"7\"},\"ratio\":0.5,\
             \"timings_ms\":{\"compress\":12.5,\"pagerank\":3.25}}"
        );
        let arr = render_json(&[r.clone(), r]);
        assert!(arr.starts_with("[\n") && arr.ends_with(']'));
        assert_eq!(arr.matches("\"workload\"").count(), 2);
    }

    #[test]
    fn json_escaping_and_non_finite_numbers() {
        let r = BenchRecord {
            workload: "a\"b\\c\nd".into(),
            label: String::new(),
            params: vec![],
            ratio: Some(f64::NAN),
            timings_ms: vec![],
        };
        let j = r.to_json();
        assert!(j.contains("a\\\"b\\\\c\\nd"));
        assert!(j.contains("\"ratio\":null"), "non-finite numbers become null: {j}");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn relative_diff_sign() {
        let o = Duration::from_millis(100);
        assert!(relative_runtime_diff(o, Duration::from_millis(50)) > 0.0);
        assert!(relative_runtime_diff(o, Duration::from_millis(200)) < 0.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
