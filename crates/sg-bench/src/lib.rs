//! # sg-bench — harness utilities shared by the experiment binaries
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (the mapping is in DESIGN.md §4 and EXPERIMENTS.md).
//! This library holds the shared pieces: stage-2 algorithm timing, relative
//! runtime differences (Figure 5's y-axis), and plain-text table rendering.

use sg_algos::{bfs, cc, pagerank, tc};
use sg_core::{CompressionScheme, SchemeParams, SchemeRegistry};
use sg_graph::CsrGraph;
use std::time::{Duration, Instant};

/// Instantiates a registry scheme for an experiment binary, panicking on
/// unknown names or bad parameters (harness code wants loud failures).
pub fn scheme(
    registry: &SchemeRegistry,
    name: &str,
    params: &[(&str, &str)],
) -> Box<dyn CompressionScheme> {
    registry
        .create(name, &SchemeParams::from_pairs(params))
        .unwrap_or_else(|e| panic!("building scheme '{name}': {e}"))
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median wall time of `runs` executions (first run discarded as warmup
/// when `runs > 1`, mirroring the paper's warmup policy).
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 1);
    if runs > 1 {
        f(); // warmup
    }
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let s = Instant::now();
            f();
            s.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The stage-2 algorithm set of Figure 5.
pub const FIG5_ALGORITHMS: [&str; 4] = ["BFS", "CC", "PR", "TC"];

/// Runs one Figure 5 algorithm and returns its wall time.
pub fn run_algorithm(name: &str, g: &CsrGraph) -> Duration {
    match name {
        "BFS" => {
            let root = densest_vertex(g);
            median_time(3, || {
                bfs::bfs_parallel(g, root);
            })
        }
        "CC" => median_time(3, || {
            cc::connected_components(g);
        }),
        "PR" => median_time(3, || {
            pagerank::pagerank(
                g,
                pagerank::PageRankConfig { max_iterations: 20, ..Default::default() },
            );
        }),
        "TC" => median_time(3, || {
            tc::count_triangles(g);
        }),
        other => panic!("unknown algorithm {other}"),
    }
}

/// Root choice for BFS runs: the highest-degree vertex (stable across
/// compression, reached component is large).
pub fn densest_vertex(g: &CsrGraph) -> u32 {
    (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap_or(0)
}

/// Figure 5's y-axis: relative difference between runtimes over the
/// compressed and the original graph (positive = speedup).
pub fn relative_runtime_diff(original: Duration, compressed: Duration) -> f64 {
    let o = original.as_secs_f64();
    if o == 0.0 {
        return 0.0;
    }
    (o - compressed.as_secs_f64()) / o
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a fixed-width value.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        assert!(t.contains("long-name"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn algorithms_all_run() {
        let g = generators::erdos_renyi(500, 2000, 1);
        for a in FIG5_ALGORITHMS {
            let d = run_algorithm(a, &g);
            assert!(d.as_nanos() > 0);
        }
    }

    #[test]
    fn scheme_helper_builds_from_registry() {
        let registry = SchemeRegistry::with_defaults();
        let s = scheme(&registry, "uniform", &[("p", "0.3")]);
        assert_eq!(s.name(), "uniform");
        assert_eq!(s.label(), "uniform (p=0.3)");
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn scheme_helper_panics_loudly_on_unknown_names() {
        scheme(&SchemeRegistry::with_defaults(), "nope", &[]);
    }

    #[test]
    fn relative_diff_sign() {
        let o = Duration::from_millis(100);
        assert!(relative_runtime_diff(o, Duration::from_millis(50)) > 0.0);
        assert!(relative_runtime_diff(o, Duration::from_millis(200)) < 0.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
