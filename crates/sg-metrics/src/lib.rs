//! # sg-metrics — the Slim Graph analytics subsystem (§5)
//!
//! Metrics for assessing the accuracy of lossy graph compression, one per
//! output class of graph algorithms:
//!
//! * scalar outputs (e.g. #connected components) → [`scalar`] relative change,
//! * vector outputs that impose an ordering (BC, per-vertex TC) →
//!   [`reordered`] counts of reordered pairs,
//! * distribution outputs (PageRank) → [`divergences`], with
//!   Kullback–Leibler selected as the paper's tool of choice,
//! * BFS (vector of predecessors — neither an ordering nor a distribution)
//!   → [`bfs_critical`] critical-edge preservation,
//! * whole-graph structure → [`degree_dist`] degree-distribution comparison
//!   (the visual instrument of Figures 7 and 8).

pub mod bfs_critical;
pub mod degree_dist;
pub mod divergences;
pub mod projection;
pub mod reordered;
pub mod scalar;

pub use bfs_critical::{critical_edge_preservation, critical_edges};
pub use degree_dist::{
    compare_degree_distribution_baseline, compare_degree_distributions, DegreeDistComparison,
};
pub use divergences::{hellinger, jensen_shannon, kl_divergence, total_variation};
pub use projection::project_scores;
pub use reordered::{reordered_neighbor_fraction, reordered_pair_fraction};
pub use scalar::{relative_change, relative_error};
