//! BFS critical-edge analysis (§5, Figure 4).
//!
//! BFS output (a vector of predecessors) is neither an ordering nor a
//! distribution, so the paper defines a bespoke metric: the set of *critical
//! edges* `Ecr` contains tree edges plus *potential* edges — any edge that
//! could replace a tree edge, i.e. any edge joining consecutive BFS
//! frontiers. Compression accuracy is the ratio `|Ẽcr| / |Ecr|` between the
//! critical-edge counts of the compressed and original graphs for the same
//! root (§7.2 reports ≈96/75/57/27% for spanners with k = 2/8/32/128).

use sg_algos::bfs::{bfs, UNREACHABLE};
use sg_graph::{CsrGraph, VertexId};

/// Classification of a graph's edges w.r.t. one BFS traversal.
#[derive(Clone, Debug)]
pub struct CriticalEdges {
    /// Canonical (u, v) pairs of critical edges (tree ∪ potential).
    pub edges: Vec<(VertexId, VertexId)>,
    /// Number of tree edges (reached vertices minus the root).
    pub tree_edges: usize,
    /// Total edges inspected.
    pub total_edges: usize,
}

impl CriticalEdges {
    /// Number of critical edges |Ecr|.
    pub fn count(&self) -> usize {
        self.edges.len()
    }

    /// Number of non-critical edges.
    pub fn non_critical(&self) -> usize {
        self.total_edges - self.edges.len()
    }
}

/// Computes the critical-edge set for a BFS from `root`: every edge whose
/// endpoints sit on consecutive BFS frontiers (such an edge either is a tree
/// edge or could replace one).
pub fn critical_edges(g: &CsrGraph, root: VertexId) -> CriticalEdges {
    let r = bfs(g, root);
    let mut edges = Vec::new();
    for (_, u, v) in g.edge_iter() {
        let du = r.depth[u as usize];
        let dv = r.depth[v as usize];
        if du == UNREACHABLE || dv == UNREACHABLE {
            continue;
        }
        if du.abs_diff(dv) == 1 {
            edges.push((u, v));
        }
    }
    CriticalEdges { edges, tree_edges: r.reached.saturating_sub(1), total_edges: g.num_edges() }
}

/// The paper's preservation ratio `|Ẽcr| / |Ecr|` for the same root.
/// Values close to 1 mean the compressed graph retains the structure BFS
/// (and Graph500 validation) depends on.
pub fn critical_edge_preservation(
    original: &CsrGraph,
    compressed: &CsrGraph,
    root: VertexId,
) -> f64 {
    let ecr = critical_edges(original, root).count();
    if ecr == 0 {
        return 1.0;
    }
    let etil = critical_edges(compressed, root).count();
    etil as f64 / ecr as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn tree_graph_all_edges_critical() {
        let g = generators::path(6);
        let c = critical_edges(&g, 0);
        assert_eq!(c.count(), 5);
        assert_eq!(c.tree_edges, 5);
        assert_eq!(c.non_critical(), 0);
    }

    #[test]
    fn same_frontier_edges_are_non_critical() {
        // Square with a diagonal: from root 0, vertices 1 and 2 share a
        // frontier, so edge (1,2) is non-critical.
        let g = CsrGraph::from_pairs(4, &[(0, 1), (0, 2), (1, 2), (1, 3)]);
        let c = critical_edges(&g, 0);
        assert_eq!(c.count(), 3);
        assert!(!c.edges.contains(&(1, 2)));
    }

    #[test]
    fn preservation_is_one_for_identity() {
        let g = generators::erdos_renyi(300, 1200, 1);
        assert!((critical_edge_preservation(&g, &g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preservation_drops_with_removal() {
        let g = generators::erdos_renyi(300, 1500, 2);
        let half = g.filter_edges(|e| e % 2 == 0);
        let p = critical_edge_preservation(&g, &half, 0);
        assert!(p < 1.0);
        assert!(p > 0.0);
    }

    #[test]
    fn unreachable_parts_ignored() {
        let g = CsrGraph::from_pairs(5, &[(0, 1), (2, 3), (3, 4)]);
        let c = critical_edges(&g, 0);
        assert_eq!(c.count(), 1); // only (0,1); component {2,3,4} unreached
    }

    use sg_graph::CsrGraph;
}
