//! Statistical divergences (§5).
//!
//! The paper surveys f-divergences and Bregman divergences and selects
//! Kullback–Leibler — the only divergence in both families — to quantify
//! information loss between algorithm outputs interpreted as probability
//! distributions (PageRank above all; Table 5). A few alternatives are
//! provided so users can reproduce the paper's selection analysis.

/// Additive smoothing floor: divergences require absolute continuity
/// (`Q(i) = 0 ⟹ P(i) = 0`); compressed graphs can zero a vertex's rank, so
/// both inputs are smoothed and renormalized before comparison.
const SMOOTHING: f64 = 1e-12;

fn smooth(p: &[f64]) -> Vec<f64> {
    let total: f64 = p.iter().map(|&x| x.max(0.0) + SMOOTHING).sum();
    p.iter().map(|&x| (x.max(0.0) + SMOOTHING) / total).collect()
}

fn check_lengths(p: &[f64], q: &[f64]) {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    assert!(!p.is_empty(), "distributions must be non-empty");
}

/// Kullback–Leibler divergence `D(P ‖ Q) = Σ P(i) log2(P(i)/Q(i))` in bits.
///
/// Non-negative; zero iff the (smoothed) distributions coincide. Lower KL
/// between PageRank distributions means the compressed graph is closer to
/// the original (Table 5's reading).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    check_lengths(p, q);
    let ps = smooth(p);
    let qs = smooth(q);
    ps.iter()
        .zip(&qs)
        .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).log2() } else { 0.0 })
        .sum::<f64>()
        .max(0.0) // guard tiny negative rounding
}

/// Jensen–Shannon divergence (symmetrized, bounded KL): `(D(P‖M)+D(Q‖M))/2`
/// with `M = (P+Q)/2`. Bounded by 1 bit.
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    check_lengths(p, q);
    let ps = smooth(p);
    let qs = smooth(q);
    let m: Vec<f64> = ps.iter().zip(&qs).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * (kl_divergence(&ps, &m) + kl_divergence(&qs, &m))
}

/// Total variation distance `½ Σ |P(i) − Q(i)|`, in `[0, 1]`.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    check_lengths(p, q);
    let ps = smooth(p);
    let qs = smooth(q);
    0.5 * ps.iter().zip(&qs).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Hellinger distance `√(½ Σ (√P(i) − √Q(i))²)`, in `[0, 1]`.
pub fn hellinger(p: &[f64], q: &[f64]) -> f64 {
    check_lengths(p, q);
    let ps = smooth(p);
    let qs = smooth(q);
    let s: f64 = ps.iter().zip(&qs).map(|(&a, &b)| (a.sqrt() - b.sqrt()).powi(2)).sum();
    (0.5 * s).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_for_identical() {
        let p = vec![0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-9);
    }

    #[test]
    fn kl_is_nonnegative_and_asymmetric() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.1, 0.2, 0.7];
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&q, &p);
        assert!(d1 > 0.0);
        assert!(d2 > 0.0);
        // KL is generally asymmetric; for this symmetric swap it happens to
        // coincide, so perturb instead.
        let q2 = vec![0.5, 0.3, 0.2];
        assert!((kl_divergence(&p, &q2) - kl_divergence(&q2, &p)).abs() > 1e-6);
    }

    #[test]
    fn kl_grows_with_distortion() {
        // §7.2: "the higher the compression ratio, the higher KL becomes" —
        // monotone response to increasing distortion.
        let p = vec![0.4, 0.3, 0.2, 0.1];
        let mild = vec![0.38, 0.31, 0.21, 0.10];
        let harsh = vec![0.1, 0.2, 0.3, 0.4];
        assert!(kl_divergence(&p, &mild) < kl_divergence(&p, &harsh));
    }

    #[test]
    fn kl_handles_zeros_via_smoothing() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![0.5, 0.0, 0.5];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = vec![0.9, 0.1];
        let q = vec![0.1, 0.9];
        let a = jensen_shannon(&p, &q);
        let b = jensen_shannon(&q, &p);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a <= 1.0 + 1e-9);
    }

    #[test]
    fn tv_and_hellinger_bounds() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!(total_variation(&p, &q) > 0.99);
        assert!(hellinger(&p, &q) > 0.99);
        assert!(total_variation(&p, &p) < 1e-9);
        assert!(hellinger(&p, &p) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal support")]
    fn mismatched_lengths_panic() {
        kl_divergence(&[0.5, 0.5], &[1.0]);
    }

    #[test]
    fn unnormalized_inputs_are_normalized() {
        // Raw algorithm outputs may not sum to 1; smoothing normalizes.
        let p = vec![2.0, 2.0];
        let q = vec![1.0, 1.0];
        assert!(kl_divergence(&p, &q) < 1e-9);
    }
}
