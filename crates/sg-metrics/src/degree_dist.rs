//! Degree-distribution comparison (§7.2–§7.3, Figures 7 and 8).
//!
//! Degree distributions determine many structural and performance
//! properties; comparing them before and after compression is the paper's
//! visual accuracy instrument, and — unlike the pairwise metrics — it works
//! across graphs with different vertex counts.

use sg_graph::properties::DegreeDistribution;
use sg_graph::CsrGraph;

/// Summary of how compression deformed a degree distribution.
#[derive(Clone, Debug)]
pub struct DegreeDistComparison {
    /// L1 distance between the `degree -> fraction` series (union support).
    pub l1_distance: f64,
    /// Support sizes (number of distinct degrees) before/after — uniform
    /// sampling "removes the clutter" by shrinking this (Fig. 8).
    pub support_before: usize,
    pub support_after: usize,
    /// Power-law fit R² before/after — spanners "strengthen the power law"
    /// by pushing R² towards 1 (Fig. 7).
    pub r2_before: Option<f64>,
    pub r2_after: Option<f64>,
    /// Fitted exponents before/after.
    pub exponent_before: Option<f64>,
    pub exponent_after: Option<f64>,
}

/// Compares the degree distributions of two graphs.
pub fn compare_degree_distributions(before: &CsrGraph, after: &CsrGraph) -> DegreeDistComparison {
    compare_degree_distribution_baseline(&DegreeDistribution::of(before), after)
}

/// [`compare_degree_distributions`] against a precomputed baseline
/// distribution — callers that score many compressed graphs against one
/// original (e.g. `sg-tune`'s objective) build the baseline once.
pub fn compare_degree_distribution_baseline(
    db: &DegreeDistribution,
    after: &CsrGraph,
) -> DegreeDistComparison {
    let da = DegreeDistribution::of(after);
    let fb = db.fractions();
    let fa = da.fractions();

    // L1 over the union of supports.
    let mut l1 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < fb.len() || j < fa.len() {
        match (fb.get(i), fa.get(j)) {
            (Some(&(dbg, pb)), Some(&(dag, pa))) => {
                if dbg == dag {
                    l1 += (pb - pa).abs();
                    i += 1;
                    j += 1;
                } else if dbg < dag {
                    l1 += pb;
                    i += 1;
                } else {
                    l1 += pa;
                    j += 1;
                }
            }
            (Some(&(_, pb)), None) => {
                l1 += pb;
                i += 1;
            }
            (None, Some(&(_, pa))) => {
                l1 += pa;
                j += 1;
            }
            (None, None) => break,
        }
    }

    let fit_b = db.power_law_fit();
    let fit_a = da.power_law_fit();
    DegreeDistComparison {
        l1_distance: l1,
        support_before: db.support_size(),
        support_after: da.support_size(),
        r2_before: fit_b.map(|f| f.r2),
        r2_after: fit_a.map(|f| f.r2),
        exponent_before: fit_b.map(|f| f.exponent),
        exponent_after: fit_a.map(|f| f.exponent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g = generators::barabasi_albert(500, 3, 1);
        let c = compare_degree_distributions(&g, &g);
        assert!(c.l1_distance < 1e-12);
        assert_eq!(c.support_before, c.support_after);
    }

    #[test]
    fn sampling_shrinks_support() {
        // Fig. 8: uniform sampling removes degree-distribution clutter.
        let g = generators::rmat_graph500(12, 12, 2);
        let h = g.filter_edges(|e| e % 3 != 0); // drop a third of edges
        let c = compare_degree_distributions(&g, &h);
        assert!(c.support_after <= c.support_before);
        assert!(c.l1_distance > 0.0);
    }

    #[test]
    fn l1_bounded_by_two() {
        let a = generators::complete(30);
        let b = generators::path(30);
        let c = compare_degree_distributions(&a, &b);
        assert!(c.l1_distance <= 2.0 + 1e-12);
        assert!(c.l1_distance > 1.0); // disjoint supports
    }
}
