//! Counts of reordered pairs (§5).
//!
//! For algorithms whose output is a per-vertex score that imposes an
//! ordering (betweenness centrality, triangles per vertex), compression
//! accuracy is the number of vertex pairs whose relative order flips,
//! normalized by `n²` — `|PRE / n²|` in the paper. The exact count uses a
//! Fenwick tree (O(n log n), the inversion-counting formulation of Kendall's
//! discordance); the cheaper neighbor-only variant checks only pairs joined
//! by an edge (O(m)).

use sg_graph::CsrGraph;

/// Fenwick tree for prefix counts.
struct Bit {
    tree: Vec<u64>,
}

impl Bit {
    fn new(n: usize) -> Self {
        Self { tree: vec![0; n + 1] }
    }
    fn add(&mut self, mut i: usize) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }
    /// Count of inserted values with index ≤ i.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Dense ranks of `values` (equal values share a rank).
fn dense_ranks(values: &[f64]) -> (Vec<usize>, usize) {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0usize; values.len()];
    let mut rank = 0usize;
    for (pos, &i) in idx.iter().enumerate() {
        if pos > 0 && values[i] != values[idx[pos - 1]] {
            rank += 1;
        }
        ranks[i] = rank;
    }
    (ranks, rank + 1)
}

/// Exact number of *discordant* pairs: pairs `(i, j)` with
/// `before[i] < before[j]` but `after[i] > after[j]` (strict flips; ties on
/// either side do not count).
pub fn reordered_pair_count(before: &[f64], after: &[f64]) -> u64 {
    assert_eq!(before.len(), after.len(), "score vectors must align");
    let n = before.len();
    if n < 2 {
        return 0;
    }
    let (after_ranks, num_ranks) = dense_ranks(after);
    // Process vertices in increasing `before` order, groups of equal
    // `before` together so intra-group pairs (ties) are excluded. For each
    // element, previously inserted elements all have strictly smaller
    // `before`; those with strictly larger `after` rank are discordant.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| before[a].total_cmp(&before[b]));
    let mut bit = Bit::new(num_ranks);
    let mut inserted = 0u64;
    let mut count = 0u64;
    let mut pos = 0usize;
    while pos < n {
        let mut end = pos;
        while end < n && before[idx[end]] == before[idx[pos]] {
            end += 1;
        }
        // Count discordances against everything inserted so far.
        for &i in &idx[pos..end] {
            let r = after_ranks[i];
            let le = bit.prefix(r); // inserted with after-rank <= r
            count += inserted - le; // strictly greater after-rank => flip
        }
        for &i in &idx[pos..end] {
            bit.add(after_ranks[i]);
            inserted += 1;
        }
        pos = end;
    }
    count
}

/// `|PRE / n²|` — the paper's normalized reordered-pair metric.
pub fn reordered_pair_fraction(before: &[f64], after: &[f64]) -> f64 {
    let n = before.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    reordered_pair_count(before, after) as f64 / (n * n)
}

/// Neighbor-only variant (O(m)): the fraction of *edges* whose endpoint
/// order (w.r.t. the score) flips after compression. Scores are indexed by
/// the original graph's vertex ids.
pub fn reordered_neighbor_fraction(g: &CsrGraph, before: &[f64], after: &[f64]) -> f64 {
    assert_eq!(before.len(), g.num_vertices());
    assert_eq!(after.len(), g.num_vertices());
    if g.num_edges() == 0 {
        return 0.0;
    }
    let flipped = g
        .edge_iter()
        .filter(|&(_, u, v)| {
            let (u, v) = (u as usize, v as usize);
            (before[u] < before[v] && after[u] > after[v])
                || (before[u] > before[v] && after[u] < after[v])
        })
        .count();
    flipped as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn identical_orders_have_zero_flips() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(reordered_pair_count(&s, &s), 0);
        assert_eq!(reordered_pair_fraction(&s, &s), 0.0);
    }

    #[test]
    fn full_reversal_flips_all_pairs() {
        let before = vec![1.0, 2.0, 3.0, 4.0];
        let after = vec![4.0, 3.0, 2.0, 1.0];
        assert_eq!(reordered_pair_count(&before, &after), 6); // C(4,2)
    }

    #[test]
    fn single_swap() {
        let before = vec![1.0, 2.0, 3.0];
        let after = vec![2.0, 1.0, 3.0];
        assert_eq!(reordered_pair_count(&before, &after), 1);
    }

    #[test]
    fn ties_do_not_count() {
        // Pair tied before -> cannot flip; pair tied after -> not a strict flip.
        let before = vec![1.0, 1.0, 2.0];
        let after = vec![5.0, 1.0, 1.0];
        // Pairs: (0,1) tied before; (0,2): before 1<2, after 5>1 -> flip;
        // (1,2): before 1<2, after 1==1 -> no flip.
        assert_eq!(reordered_pair_count(&before, &after), 1);
    }

    #[test]
    fn matches_bruteforce_on_random() {
        use sg_graph::prng::unit_f64;
        let n = 200;
        let before: Vec<f64> = (0..n).map(|i| unit_f64(1, i as u64)).collect();
        let after: Vec<f64> = (0..n).map(|i| unit_f64(2, i as u64)).collect();
        let brute = {
            let mut c = 0u64;
            for i in 0..n {
                for j in (i + 1)..n {
                    if (before[i] < before[j] && after[i] > after[j])
                        || (before[i] > before[j] && after[i] < after[j])
                    {
                        c += 1;
                    }
                }
            }
            c
        };
        assert_eq!(reordered_pair_count(&before, &after), brute);
    }

    #[test]
    fn neighbor_fraction_on_path() {
        let g = generators::path(3); // edges (0,1), (1,2)
        let before = vec![1.0, 2.0, 3.0];
        let after = vec![2.0, 1.0, 3.0];
        // Edge (0,1) flipped, edge (1,2) kept order (1 < 3).
        assert!((reordered_neighbor_fraction(&g, &before, &after) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(reordered_pair_fraction(&[], &[]), 0.0);
        assert_eq!(reordered_pair_fraction(&[1.0], &[2.0]), 0.0);
    }
}
