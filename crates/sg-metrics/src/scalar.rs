//! Relative scalar change — the simple metric for scalar-output algorithms
//! (#connected components, triangle totals, MST weight, matching size).

/// Relative change `(after - before) / before`; 0 when both are 0.
pub fn relative_change(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        if after == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (after - before) / before
    }
}

/// Relative *error* `|after - before| / |before|` (symmetric sign).
pub fn relative_error(before: f64, after: f64) -> f64 {
    relative_change(before, after).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_changes() {
        assert_eq!(relative_change(10.0, 5.0), -0.5);
        assert_eq!(relative_change(10.0, 15.0), 0.5);
        assert_eq!(relative_change(0.0, 0.0), 0.0);
        assert_eq!(relative_change(0.0, 3.0), f64::INFINITY);
    }

    #[test]
    fn error_is_absolute() {
        assert_eq!(relative_error(10.0, 5.0), 0.5);
        assert_eq!(relative_error(10.0, 15.0), 0.5);
    }
}
