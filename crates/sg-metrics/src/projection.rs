//! Projecting compressed-graph scores back onto the original vertex ids.
//!
//! Vertex-removing schemes (low-degree removal, triangle collapse) relabel
//! survivors compactly, so per-vertex algorithm outputs on the compressed
//! graph are indexed by *new* ids and cannot be compared element-wise
//! against the original. The pipeline layer records the composed old→new
//! relabelling; this module lifts compressed score vectors back to the
//! original support (removed vertices score 0), which is exactly what the
//! pairwise metrics expect: KL's smoothing absorbs the introduced zeros,
//! and reordered-pairs treats removed vertices as dropping to the bottom
//! of the ordering.

use sg_graph::VertexId;

/// Lifts `scores` (indexed by compressed-graph ids) back onto the original
/// `n`-vertex id space using the old→new `mapping` recorded by the
/// compression run. `None` mapping means the vertex set was preserved and
/// `scores` is returned as-is (its length must then be `n`). Removed
/// vertices receive 0.0.
///
/// Returns `None` when the vectors cannot be aligned: a mapped id out of
/// range, or an identity mapping whose score length differs from `n` —
/// both indicate the scores do not belong to this compression run.
pub fn project_scores(
    n: usize,
    mapping: Option<&[Option<VertexId>]>,
    scores: &[f64],
) -> Option<Vec<f64>> {
    match mapping {
        None => (scores.len() == n).then(|| scores.to_vec()),
        Some(map) => {
            if map.len() != n {
                return None;
            }
            let mut out = vec![0.0; n];
            for (old, new) in map.iter().enumerate() {
                if let Some(new) = new {
                    out[old] = *scores.get(*new as usize)?;
                }
            }
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_passes_through() {
        let s = vec![0.3, 0.7];
        assert_eq!(project_scores(2, None, &s).expect("aligned"), s);
        assert!(project_scores(3, None, &s).is_none(), "length mismatch rejected");
    }

    #[test]
    fn removed_vertices_score_zero() {
        // 4 originals; 1 and 3 removed; survivors relabelled 0->0, 2->1.
        let mapping = vec![Some(0u32), None, Some(1), None];
        let projected = project_scores(4, Some(&mapping), &[0.6, 0.4]).expect("aligned");
        assert_eq!(projected, vec![0.6, 0.0, 0.4, 0.0]);
    }

    #[test]
    fn out_of_range_mapping_is_rejected() {
        let mapping = vec![Some(5u32)];
        assert!(project_scores(1, Some(&mapping), &[1.0]).is_none());
        assert!(project_scores(2, Some(&[Some(0u32)]), &[1.0]).is_none(), "short mapping");
    }
}
