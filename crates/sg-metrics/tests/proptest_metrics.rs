//! Property-based tests for the analytics subsystem's mathematical
//! invariants (divergence axioms, reordered-pair identities).

use proptest::prelude::*;
use sg_metrics::{
    hellinger, jensen_shannon, kl_divergence, reordered::reordered_pair_count, total_variation,
};

fn distribution(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..10.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// KL is non-negative and zero on identical inputs.
    #[test]
    fn kl_nonnegative(p in distribution(16), q in distribution(16)) {
        prop_assert!(kl_divergence(&p, &q) >= 0.0);
        prop_assert!(kl_divergence(&p, &p) < 1e-9);
    }

    /// KL is invariant under rescaling either argument (inputs are
    /// normalized internally).
    #[test]
    fn kl_scale_invariant(p in distribution(12), q in distribution(12), c in 0.1f64..50.0) {
        let scaled: Vec<f64> = p.iter().map(|x| x * c).collect();
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&scaled, &q);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    /// Jensen–Shannon is symmetric and bounded by 1 bit.
    #[test]
    fn js_symmetric_bounded(p in distribution(12), q in distribution(12)) {
        let a = jensen_shannon(&p, &q);
        let b = jensen_shannon(&q, &p);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a));
    }

    /// Total variation and Hellinger are metrics on [0, 1]: symmetric,
    /// zero iff equal, triangle inequality.
    #[test]
    fn tv_hellinger_metric_axioms(
        p in distribution(10),
        q in distribution(10),
        r in distribution(10),
    ) {
        for f in [total_variation, hellinger] {
            let pq = f(&p, &q);
            let qp = f(&q, &p);
            prop_assert!((pq - qp).abs() < 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pq));
            prop_assert!(f(&p, &p) < 1e-9);
            // Triangle inequality.
            prop_assert!(f(&p, &r) <= pq + f(&q, &r) + 1e-9);
        }
    }

    /// Pinsker-style ordering: TV² ≤ KL·ln2/2 (sanity tying the divergences
    /// together).
    #[test]
    fn pinsker_inequality(p in distribution(14), q in distribution(14)) {
        let tv = total_variation(&p, &q);
        let kl_nats = kl_divergence(&p, &q) * std::f64::consts::LN_2;
        prop_assert!(tv * tv <= kl_nats / 2.0 + 1e-9);
    }

    /// Reordered pairs: symmetric in (before, after), zero for identity and
    /// for any monotone transform, equal to brute force.
    #[test]
    fn reordered_pairs_properties(scores in proptest::collection::vec(0u32..50, 2..40)) {
        let before: Vec<f64> = scores.iter().map(|&x| x as f64).collect();
        // Monotone transform preserves order -> zero flips.
        let squared: Vec<f64> = before.iter().map(|x| x * x + 1.0).collect();
        prop_assert_eq!(reordered_pair_count(&before, &squared), 0);
        // Symmetry.
        let reversed: Vec<f64> = before.iter().map(|x| -x).collect();
        prop_assert_eq!(
            reordered_pair_count(&before, &reversed),
            reordered_pair_count(&reversed, &before)
        );
    }

    /// Exact count matches O(n²) brute force on random score pairs.
    #[test]
    fn reordered_matches_bruteforce(
        before in proptest::collection::vec(0u32..20, 2..30),
        after in proptest::collection::vec(0u32..20, 2..30),
    ) {
        let n = before.len().min(after.len());
        let b: Vec<f64> = before[..n].iter().map(|&x| x as f64).collect();
        let a: Vec<f64> = after[..n].iter().map(|&x| x as f64).collect();
        let mut brute = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if (b[i] < b[j] && a[i] > a[j]) || (b[i] > b[j] && a[i] < a[j]) {
                    brute += 1;
                }
            }
        }
        prop_assert_eq!(reordered_pair_count(&b, &a), brute);
    }
}
