#!/usr/bin/env python3
"""Gating perf-drift check against a committed bench baseline.

Usage:
    python3 ci/check_drift.py BENCH_9.json fresh1.json [fresh2.json ...]

The baseline is a committed ``BENCH_N.json`` (schema
``slimgraph-bench-baseline-v1``) whose ``gate`` block carries the
tolerance policy; the fresh inputs are BenchRecord JSON arrays as
emitted by the bench binaries with ``--json``. Records are matched by
``(workload, label)``.

Policy (documented in docs/OBSERVABILITY.md):

* Deterministic ``ratio`` values (compression/storage ratios — pure
  functions of graph, spec, seed) get a tight symmetric relative band
  (``ratio_rel_tol``): any movement is a real behavior change.
* Labels matching ``timing_ratio_label_prefixes`` (encoded-vs-raw
  kernel overhead) have timing-derived ratios: they get a wide
  multiplicative band (``ratio_timing_factor``) and are
  regression-only (a *lower* overhead never fails).
* Timing metrics get a regression-only multiplicative band plus an
  absolute slack (fail only when
  ``fresh > base * timing_factor + timing_slack_ms``) so sub-ms
  baselines are not gated on scheduler noise. Metrics named
  ``*throughput_rps`` are higher-is-better and invert the test.
* Metrics starting with a ``skip_metric_prefixes`` entry (cumulative
  ``le_*`` bucket counts) are never gated.
* A baseline record or metric missing from the fresh run FAILS (a
  silently vanished workload is drift too); fresh-only records are
  informational.

Per-workload overrides live under ``gate.workloads.<workload>`` and
shadow the top-level defaults.

Exit status: 0 within tolerance, 1 on any failure.
"""

import json
import sys


def band(gate, workload, key, default):
    """The tolerance value for one workload: override, default, builtin."""
    override = gate.get("workloads", {}).get(workload, {})
    return override.get(key, gate.get(key, default))


def check(baseline_path, fresh_paths):
    base = json.load(open(baseline_path))
    gate = base.get("gate", {})
    baseline = {
        (r["workload"], r["label"]): r for suite in base["suites"].values() for r in suite
    }
    fresh = {}
    for path in fresh_paths:
        for r in json.load(open(path)):
            fresh[(r["workload"], r["label"])] = r

    timing_ratio_prefixes = tuple(gate.get("timing_ratio_label_prefixes", []))
    skip_prefixes = tuple(gate.get("skip_metric_prefixes", []))
    failures, lines = [], []

    def fail(name, message):
        failures.append(f"{name}: {message}")
        lines.append(f"  FAIL {name}: {message}")

    for key in sorted(baseline):
        name = "/".join(key)
        b, f = baseline[key], fresh.get(key)
        if f is None:
            fail(name, "present in baseline but missing from the fresh run")
            continue
        workload, label = key

        br, fr = b.get("ratio"), f.get("ratio")
        if isinstance(br, (int, float)) and isinstance(fr, (int, float)) and br:
            if label.startswith(timing_ratio_prefixes):
                factor = band(gate, workload, "ratio_timing_factor", 3.0)
                if fr > br * factor:
                    fail(name, f"timing ratio {br:.4f} -> {fr:.4f} (> {factor}x band)")
                else:
                    lines.append(f"  ok   {name}: timing ratio {br:.4f} -> {fr:.4f}")
            else:
                tol = band(gate, workload, "ratio_rel_tol", 0.02)
                drift = abs(fr - br) / abs(br)
                if drift > tol:
                    fail(
                        name,
                        f"deterministic ratio {br:.6f} -> {fr:.6f} "
                        f"({100 * drift:.2f}% > {100 * tol:.1f}% band)",
                    )
                else:
                    lines.append(
                        f"  ok   {name}: ratio {br:.6f} -> {fr:.6f} ({100 * drift:.2f}%)"
                    )

        factor = band(gate, workload, "timing_factor", 4.0)
        slack = band(gate, workload, "timing_slack_ms", 25.0)
        fresh_timings = f.get("timings_ms", {})
        for metric, bv in b.get("timings_ms", {}).items():
            if metric.startswith(skip_prefixes):
                continue
            fv = fresh_timings.get(metric)
            if fv is None:
                fail(name, f"metric {metric} vanished from the fresh run")
                continue
            if metric.endswith("throughput_rps"):
                bound = bv / factor
                if fv < bound:
                    fail(
                        name,
                        f"{metric} {bv:.1f} -> {fv:.1f} rps "
                        f"(below the 1/{factor}x regression bound {bound:.1f})",
                    )
                else:
                    lines.append(f"  ok   {name}: {metric} {bv:.1f} -> {fv:.1f} rps")
            else:
                bound = bv * factor + slack
                if fv > bound:
                    fail(
                        name,
                        f"{metric} {bv:.3f} -> {fv:.3f} ms "
                        f"(over the {factor}x + {slack} ms regression bound {bound:.3f})",
                    )
                else:
                    lines.append(f"  ok   {name}: {metric} {bv:.3f} -> {fv:.3f} ms")

    for key in sorted(set(fresh) - set(baseline)):
        lines.append(f"  info {'/'.join(key)}: new in fresh run (not gated)")

    print(f"drift gate: {baseline_path} vs {len(fresh)} fresh records")
    for line in lines:
        print(line)
    if failures:
        print(f"\ndrift gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        print("if the shift is intended, refresh the committed baseline in this PR")
        return 1
    print(f"\ndrift gate passed: {len(baseline)} baseline records within tolerance")
    return 0


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    return check(argv[1], argv[2:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
