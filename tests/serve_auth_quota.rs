//! Token-auth and per-client quota suite (ISSUE 7). Auth: a
//! `--token`-protected daemon refuses every op but `ping` until the
//! caller presents the exact token. Quotas: per-peer catalog and cache
//! byte budgets answer `quota-exceeded` once breached, and eviction
//! refunds the budget.

use slimgraph::core::graph_approx_bytes;
use slimgraph::graph::generators;
use slimgraph::serve::{Client, Json, ServeConfig, Server};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("slimgraph-serve-authquota-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

fn spawn(cfg: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn ok(response: &Json) -> &Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

fn error_code(response: &Json) -> String {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_default()
}

#[test]
fn token_gates_everything_but_ping() {
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        token: Some("open-sesame".into()),
        ..Default::default()
    };
    let (addr, daemon) = spawn(cfg);
    let mut client = Client::connect(&addr).expect("connect");

    // ping stays open (liveness probes must not need secrets)…
    ok(&client.request(&Client::request_for("ping")).expect("ping"));
    // …but everything else is gated.
    let response = client.request(&Client::request_for("stats")).expect("answered");
    assert_eq!(error_code(&response), "auth-required", "{}", response.render());
    // A wrong token is not a partial credit.
    let response = client
        .request(&Client::request_for("stats").with("token", Json::str("open-sesame!")))
        .expect("answered");
    assert_eq!(error_code(&response), "auth-required", "{}", response.render());
    let response = client
        .request(&Client::request_for("stats").with("token", Json::str("open-sesam")))
        .expect("answered");
    assert_eq!(error_code(&response), "auth-required", "{}", response.render());

    // The exact token unlocks, and the failures above were counted.
    client.set_token(Some("open-sesame".into()));
    let stats = client.request(&Client::request_for("stats")).expect("stats");
    let server = ok(&stats).get("server").expect("server stats");
    assert!(
        server.get("auth_failures").and_then(Json::as_u64).unwrap_or(0) >= 3,
        "auth failures counted: {}",
        stats.render()
    );
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn catalog_quota_bounds_loads_and_eviction_refunds() {
    let g = generators::barabasi_albert(400, 4, 51);
    let bytes = graph_approx_bytes(&g) as u64;
    let p1 = tmp("quota-a.sgr");
    let p2 = tmp("quota-b.sgr");
    slimgraph::store::save_sgr(&g, &p1).expect("save");
    slimgraph::store::save_sgr(&g, &p2).expect("save");

    // Budget fits one resident copy but not two.
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        catalog_quota_bytes: bytes + bytes / 2,
        ..Default::default()
    };
    let (addr, daemon) = spawn(cfg);
    let mut client = Client::connect(&addr).expect("connect");
    let load = |name: &str, path: &str| {
        Client::request_for("load").with("name", Json::str(name)).with("path", Json::str(path))
    };
    ok(&client.request(&load("a", &p1)).expect("first load"));
    let response = client.request(&load("b", &p2)).expect("answered");
    assert_eq!(error_code(&response), "quota-exceeded", "{}", response.render());
    // The rejected graph must not linger half-registered.
    let response = client
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("b"))
                .with("spec", Json::str("uniform:p=0.5")),
        )
        .expect("answered");
    assert_eq!(error_code(&response), "unknown-graph", "{}", response.render());

    // Evicting refunds the budget; the second load now fits.
    ok(&client
        .request(&Client::request_for("evict").with("graph", Json::str("a")))
        .expect("evict"));
    ok(&client.request(&load("b", &p2)).expect("load after refund"));

    let stats = client.request(&Client::request_for("stats")).expect("stats");
    let clients = ok(&stats).get("clients").and_then(Json::as_arr).expect("clients");
    let me = clients
        .iter()
        .find(|c| c.get("peer").and_then(Json::as_str) == Some("127.0.0.1"))
        .unwrap_or_else(|| panic!("loopback peer tracked: {}", stats.render()));
    assert_eq!(
        me.get("catalog_bytes").and_then(Json::as_u64),
        Some(bytes),
        "usage reflects exactly one resident copy: {}",
        stats.render()
    );
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn cache_quota_bounds_pipeline_runs_and_cache_clear_resets() {
    let g = generators::barabasi_albert(400, 4, 61);
    let path = tmp("cachequota.sgr");
    slimgraph::store::save_sgr(&g, &path).expect("save");

    // A 1-byte budget: the first run is admitted (nothing used yet),
    // every later run is over budget until the cache is cleared.
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        cache_quota_bytes: 1,
        ..Default::default()
    };
    let (addr, daemon) = spawn(cfg);
    let mut client = Client::connect(&addr).expect("connect");
    ok(&client
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(&path)),
        )
        .expect("load"));
    let compress = Client::request_for("compress")
        .with("graph", Json::str("g"))
        .with("spec", Json::str("uniform:p=0.5"))
        .with("seed", Json::u64(7));
    ok(&client.request(&compress).expect("first run"));
    let response = client.request(&compress).expect("answered");
    assert_eq!(error_code(&response), "quota-exceeded", "{}", response.render());
    assert!(
        response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("evict"),
        "error points at the remedy: {}",
        response.render()
    );
    // Clearing the cache resets per-peer cache usage.
    ok(&client
        .request(&Client::request_for("evict").with("cache", Json::Bool(true)))
        .expect("cache clear"));
    ok(&client.request(&compress).expect("run after reset"));
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}
