//! Integration tests for the simulated distributed pipeline against the
//! shared-memory engine and the analytics subsystem.

use sg_core::schemes::{uniform_sample, SpectralKernel};
use sg_core::{SchemeParams, SchemeRegistry};
use sg_dist::{distributed_compress, distributed_edge_kernel, distributed_uniform_sample};
use sg_graph::generators;
use sg_graph::properties::DegreeDistribution;

#[test]
fn distributed_uniform_equals_shared_for_any_rank_count() {
    let g = generators::rmat_graph500(11, 8, 21);
    let shared = uniform_sample(&g, 0.35, 1234);
    for ranks in [1, 3, 8, 12] {
        let dist = distributed_uniform_sample(&g, 0.35, ranks, 1234);
        assert_eq!(dist.result.graph.edge_slice(), shared.graph.edge_slice());
        assert_eq!(dist.result.original_edges, g.num_edges());
    }
}

#[test]
fn distributed_spectral_kernel_runs() {
    // Any edge kernel can run distributed; spectral reads only local degree
    // information, matching the paper's RMA access pattern.
    let g = generators::barabasi_albert(2000, 4, 22);
    let kernel = SpectralKernel::for_graph(&g, 0.5, sg_core::schemes::UpsilonVariant::LogN, false);
    let dist = distributed_edge_kernel(&g, &kernel, 6, 23);
    assert!(dist.result.graph.num_edges() < g.num_edges());
    assert!(dist.result.graph.num_edges() > 0);
    // NOTE: reweighting survivors is a shared-memory-only feature for now;
    // the distributed pipeline treats Reweight as Keep (delete decisions
    // only), matching the paper's distributed edge-compression scope.
}

#[test]
fn registry_schemes_shard_through_their_plans() {
    // The distributed backend resolves schemes through the same registry as
    // everything else. Edge-kernel schemes shard embarrassingly parallel;
    // triangle and vertex classes run the sharded executors; only global
    // rewrites are rejected — with a typed, stable-coded error.
    let g = generators::rmat_graph500(11, 8, 30);
    let registry = SchemeRegistry::with_defaults();
    let params = SchemeParams::from_pairs(&[("p", "0.35"), ("k", "2")]);
    for name in ["uniform", "cut", "tr", "lowdeg"] {
        let scheme = registry.create(name, &params).expect("registered");
        let shared = scheme.apply(&g, 77);
        for ranks in [1, 4, 9] {
            let dist = distributed_compress(&g, scheme.as_ref(), ranks, 77)
                .expect("scheme has a sharded plan");
            assert_eq!(
                dist.result.graph.edge_slice(),
                shared.graph.edge_slice(),
                "{name} at ranks={ranks}"
            );
            assert_eq!(
                dist.result.vertex_mapping, shared.vertex_mapping,
                "{name} at ranks={ranks}"
            );
        }
    }
    for name in ["spanner", "summary", "collapse"] {
        let scheme = registry.create(name, &params).expect("registered");
        let err = distributed_compress(&g, scheme.as_ref(), 4, 77)
            .err()
            .unwrap_or_else(|| panic!("{name} should report no distributed form"));
        assert_eq!(err.code(), "dist-unsupported", "{name}");
    }
}

#[test]
fn histograms_match_between_pipelines() {
    let g = generators::rmat_graph500(11, 10, 24);
    let dist = distributed_uniform_sample(&g, 0.5, 4, 25);
    let direct = DegreeDistribution::of(&dist.result.graph);
    assert_eq!(dist.degree_histogram, direct.entries);
}

#[test]
fn fig8_clutter_removal_shape() {
    // Figure 8's qualitative claim: sampling shrinks the number of distinct
    // degree values while keeping the distribution's span.
    let g = generators::rmat_graph500(13, 12, 26);
    let orig_support = DegreeDistribution::of(&g).support_size();
    let p04 = distributed_uniform_sample(&g, 0.4, 6, 27);
    let p07 = distributed_uniform_sample(&g, 0.7, 6, 27);
    assert!(p04.degree_histogram.len() <= orig_support);
    assert!(p07.degree_histogram.len() <= p04.degree_histogram.len());
}

#[test]
fn rank_stats_consistent_under_skew() {
    let g = generators::rmat_graph500(12, 8, 28);
    let dist = distributed_uniform_sample(&g, 0.25, 7, 29);
    let owned: usize = dist.ranks.iter().map(|r| r.owned_edges).sum();
    assert_eq!(owned, g.num_edges());
    for r in &dist.ranks {
        assert!(r.kept_edges <= r.owned_edges);
    }
}
