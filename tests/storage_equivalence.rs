//! Heap-loaded vs mmap-loaded equivalence: a graph served zero-copy out of
//! an `.sgr` mapping must be indistinguishable — bit for bit — from the
//! same graph decoded onto the heap, for every registered compression
//! scheme, for pipelines, and for the stage-2 algorithms, at any thread
//! count.
//!
//! This is the acceptance gate of the `sg-store` subsystem: algorithms and
//! kernels consume the CSR through the same `CsrGraph` API regardless of
//! where the arrays live, and every kernel decision is deterministic in
//! `(seed, element id)`, so a borrowed-section graph and an owned-section
//! graph must yield identical edges, weights (compared as raw bits), and
//! float scores. The suite runs each comparison under `SG_THREADS = 1` and
//! `4` via the rayon shim's programmatic knob.

use slimgraph::algos::{bfs, cc, pagerank};
use slimgraph::core::{SchemeParams, SchemeRegistry};
use slimgraph::graph::{generators, CsrGraph};
use slimgraph::store::{load_sgr, save_sgr, MmapGraph};
use std::path::PathBuf;
use std::sync::Mutex;

/// The worker-count override is process-global; tests in this binary run
/// concurrently, so every test serializes on this lock.
static KNOB: Mutex<()> = Mutex::new(());

/// Thread counts each heap-vs-mmap comparison runs under.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn with_threads(f: impl Fn(usize)) {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    for &t in &THREAD_COUNTS {
        rayon::set_num_threads(t);
        f(t);
    }
    rayon::set_num_threads(0);
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("slimgraph-storage-equivalence");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Writes `g` to `.sgr` and returns (heap-loaded, mmap-loaded) twins.
fn twins(g: &CsrGraph, name: &str) -> (CsrGraph, CsrGraph) {
    let path = tmp(name);
    save_sgr(g, &path).expect("save");
    let heap = load_sgr(&path).expect("heap load");
    let mapped = MmapGraph::open(&path).expect("mmap load");
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    assert!(mapped.is_zero_copy(), "mmap loader must borrow every section");
    (heap, mapped.into_graph())
}

fn unweighted() -> CsrGraph {
    generators::barabasi_albert(1500, 4, 0x5106)
}

fn weighted() -> CsrGraph {
    generators::with_random_weights(&generators::erdos_renyi(1200, 6000, 0x5107), 0.5, 4.5, 11)
}

fn weight_bits(g: &CsrGraph) -> Option<Vec<u32>> {
    g.weight_slice().map(|w| w.iter().map(|x| x.to_bits()).collect())
}

#[test]
fn loaders_agree_bit_for_bit() {
    for (g, name) in [(unweighted(), "base-u.sgr"), (weighted(), "base-w.sgr")] {
        let (heap, mapped) = twins(&g, name);
        assert_eq!(heap.edge_slice(), mapped.edge_slice());
        assert_eq!(heap.edge_slice(), g.edge_slice());
        assert_eq!(weight_bits(&heap), weight_bits(&mapped));
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(heap.neighbors(v), mapped.neighbors(v));
        }
    }
}

#[test]
fn every_registry_scheme_is_identical_on_mmap_graphs() {
    let registry = SchemeRegistry::with_defaults();
    let (heap_u, mapped_u) = (unweighted(), "schemes-u.sgr");
    let (heap_w, mapped_w) = (weighted(), "schemes-w.sgr");
    let (hu, mu) = twins(&heap_u, mapped_u);
    let (hw, mw) = twins(&heap_w, mapped_w);
    with_threads(|t| {
        for name in registry.names() {
            let scheme = registry.create(name, &SchemeParams::new()).expect("known scheme");
            for (label, h, m) in [("unweighted", &hu, &mu), ("weighted", &hw, &mw)] {
                let a = scheme.apply(h, 42);
                let b = scheme.apply(m, 42);
                assert_eq!(
                    a.graph.edge_slice(),
                    b.graph.edge_slice(),
                    "scheme {name} on {label} graph diverged at {t} threads"
                );
                assert_eq!(
                    weight_bits(&a.graph),
                    weight_bits(&b.graph),
                    "scheme {name} weights diverged on {label} at {t} threads"
                );
            }
        }
    });
}

#[test]
fn pipelines_are_identical_on_mmap_graphs() {
    let registry = SchemeRegistry::with_defaults();
    let pipeline = registry
        .parse_pipeline("spanner:k=4,lowdeg,uniform:p=0.6", &SchemeParams::new())
        .expect("pipeline parses");
    let (h, m) = twins(&unweighted(), "pipeline.sgr");
    with_threads(|t| {
        let a = pipeline.apply(&h, 7);
        let b = pipeline.apply(&m, 7);
        assert_eq!(
            a.result.graph.edge_slice(),
            b.result.graph.edge_slice(),
            "pipeline diverged at {t} threads"
        );
    });
}

#[test]
fn stage2_algorithms_are_identical_on_mmap_graphs() {
    let (h, m) = twins(&unweighted(), "algos.sgr");
    let root = (0..h.num_vertices() as u32).max_by_key(|&v| h.degree(v)).unwrap_or(0);
    with_threads(|t| {
        // BFS: depths + reached must match exactly; parents can race
        // between equal-depth candidates even run-to-run (documented in
        // tests/parallel_equivalence.rs), so the mmap tree is checked with
        // the Graph500 validator instead.
        let ba = bfs::bfs_parallel(&h, root);
        let bb = bfs::bfs_parallel(&m, root);
        assert_eq!(ba.depth, bb.depth, "BFS depths diverged at {t} threads");
        assert_eq!(ba.reached, bb.reached);
        assert!(bfs::validate_bfs_tree(&m, root, &bb), "mmap BFS tree invalid");

        let pa = pagerank::pagerank_default(&h);
        let pb = pagerank::pagerank_default(&m);
        let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&pa.scores), bits(&pb.scores), "PageRank diverged at {t} threads");

        let ca = cc::connected_components(&h);
        let cb = cc::connected_components(&m);
        assert_eq!(ca.labels, cb.labels, "CC labels diverged at {t} threads");
        assert_eq!(ca.num_components, cb.num_components);
    });
}
