//! Thread-count invariance suite: the determinism contract of the threaded
//! rayon backend, pinned end-to-end.
//!
//! Every kernel decision in the workspace is deterministic in
//! `(seed, element id)`, and the shim combines per-chunk results over
//! chunk boundaries that depend only on input *length* — never on the
//! worker count. Consequence: every scheme and every stage-2 algorithm
//! must produce **bit-identical** output at `SG_THREADS=1`, `4`, and `8`
//! (floating point included — the reduction trees have identical shape).
//! These tests compute each result at 1 thread and re-run it at 4 and 8
//! via the shim's programmatic knob, comparing floats by raw bits.
//!
//! The one documented exception is the `parent` vector of `bfs_parallel`:
//! equal-depth parent races are resolved by whichever worker claims the
//! vertex first (any valid parent is acceptable, as in GAPBS), so for BFS
//! the invariant covers depths and reached counts, and the parents are
//! checked against the Graph500 tree validator instead.

use slimgraph::algos::{bc, bfs, cc, diameter, pagerank};
use slimgraph::core::{CompressionScheme, SchemeParams, SchemeRegistry};
use slimgraph::graph::{generators, CsrGraph};
use std::sync::Mutex;

/// Thread counts compared against the 1-thread baseline.
const THREAD_COUNTS: [usize; 2] = [4, 8];

/// The worker-count override is process-global; tests in this binary run
/// concurrently, so every test serializes on this lock.
static KNOB: Mutex<()> = Mutex::new(());

/// Computes `compute()` at 1 thread, then at each count in
/// [`THREAD_COUNTS`], asserting all results are identical. Returns the
/// baseline.
fn assert_thread_invariant<T, F>(label: &str, compute: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    rayon::set_num_threads(1);
    let baseline = compute();
    for &threads in &THREAD_COUNTS {
        rayon::set_num_threads(threads);
        let threaded = compute();
        rayon::set_num_threads(0);
        assert_eq!(
            threaded, baseline,
            "{label}: result at {threads} threads differs from the 1-thread baseline"
        );
    }
    rayon::set_num_threads(0);
    baseline
}

/// Raw IEEE-754 bits — `==` on floats would already be strict enough for
/// these finite outputs, but bits make the "bit-identical" claim literal.
fn f64_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Everything observable about a compressed graph, with weights as bits.
fn graph_fingerprint(g: &CsrGraph) -> (usize, Vec<(u32, u32)>, Option<Vec<u32>>) {
    (
        g.num_vertices(),
        g.edge_slice().to_vec(),
        g.weight_slice().map(|w| w.iter().map(|x| x.to_bits()).collect()),
    )
}

fn test_graph() -> CsrGraph {
    generators::planted_triangles(&generators::erdos_renyi(800, 2400, 1), 600, 2)
}

#[test]
fn every_registry_scheme_is_thread_count_invariant() {
    let g = test_graph();
    let registry = SchemeRegistry::with_defaults();
    let params = SchemeParams::from_pairs(&[("p", "0.5"), ("k", "8"), ("epsilon", "0.05")]);
    let mut checked = 0;
    for name in registry.names() {
        let scheme: Box<dyn CompressionScheme> =
            registry.create(name, &params).expect("default factories succeed");
        assert_thread_invariant(&format!("scheme `{name}`"), || {
            let r = scheme.apply(&g, 3);
            (graph_fingerprint(&r.graph), r.vertex_mapping)
        });
        checked += 1;
    }
    assert!(checked >= 9, "registry shrank to {checked} schemes");
}

#[test]
fn chained_pipeline_is_thread_count_invariant() {
    let g = test_graph();
    let registry = SchemeRegistry::with_defaults();
    let params = SchemeParams::from_pairs(&[("p", "0.5")]);
    assert_thread_invariant("pipeline spanner,lowdeg,uniform", || {
        let out = registry
            .parse_pipeline("spanner,lowdeg,uniform", &params)
            .expect("spec parses")
            .apply(&g, 21);
        (graph_fingerprint(&out.result.graph), out.result.vertex_mapping)
    });
}

#[test]
fn bfs_depths_are_thread_count_invariant_and_parents_stay_valid() {
    let g = generators::rmat_graph500(11, 8, 42);
    assert_thread_invariant("bfs_parallel depths", || {
        let r = bfs::bfs_parallel(&g, 0);
        // Parents may legitimately differ between runs at >1 threads
        // (equal-depth races), but must always form a valid BFS tree.
        assert!(bfs::validate_bfs_tree(&g, 0, &r), "invalid BFS tree");
        (r.depth, r.reached)
    });
    // The sequential BFS is deterministic in full, parents included.
    assert_thread_invariant("sequential bfs", || {
        let r = bfs::bfs(&g, 0);
        (r.parent, r.depth, r.reached)
    });
}

#[test]
fn pagerank_scores_are_bit_identical_across_thread_counts() {
    let g = generators::rmat_graph500(11, 8, 5);
    assert_thread_invariant("pagerank", || {
        let r = pagerank::pagerank_default(&g);
        (f64_bits(&r.scores), r.iterations, r.residual.to_bits())
    });
}

#[test]
fn connected_components_are_thread_count_invariant() {
    let g = generators::erdos_renyi(2000, 2500, 4); // sparse: many components
    assert_thread_invariant("cc (label propagation)", || {
        let r = cc::connected_components_parallel(&g);
        (r.labels, r.num_components)
    });
    assert_thread_invariant("cc (union-find)", || {
        let r = cc::connected_components(&g);
        (r.labels, r.num_components)
    });
}

#[test]
fn diameter_and_path_lengths_are_thread_count_invariant() {
    let g = generators::watts_strogatz(600, 4, 0.05, 11);
    assert_thread_invariant("diameter family", || {
        (
            diameter::diameter_exact(&g),
            diameter::diameter_double_sweep(&g, 0),
            diameter::average_path_length_sampled(&g, 64, 9).to_bits(),
        )
    });
}

#[test]
fn betweenness_fold_reduce_is_bit_identical_across_thread_counts() {
    // The fold+reduce accumulator merge is float addition — the test that
    // would catch a thread-count-dependent reduction tree immediately.
    let g = generators::barabasi_albert(500, 3, 7);
    assert_thread_invariant("betweenness sampled", || {
        f64_bits(&bc::betweenness_sampled(&g, 128, 13))
    });
    assert_thread_invariant("betweenness exact", || f64_bits(&bc::betweenness_exact(&g)));
}

#[test]
#[ignore = "perf smoke; needs a multicore host and release mode: \
            cargo test --release --test parallel_equivalence -- --ignored"]
fn pagerank_on_100k_vertices_is_faster_with_4_threads() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let g = generators::rmat_graph500(17, 8, 7); // 131k vertices, ~1M edges
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let time_at = |threads: usize| {
        rayon::set_num_threads(threads);
        let _warmup = pagerank::pagerank_default(&g);
        let start = std::time::Instant::now();
        let r = pagerank::pagerank_default(&g);
        let elapsed = start.elapsed();
        rayon::set_num_threads(0);
        (elapsed, r)
    };
    let (t1, r1) = time_at(1);
    let (t4, r4) = time_at(4);
    assert_eq!(f64_bits(&r1.scores), f64_bits(&r4.scores), "speed must not change results");
    eprintln!("pagerank on {} vertices: 1 thread {t1:?}, 4 threads {t4:?}", g.num_vertices());
    if hw >= 4 {
        assert!(t4 < t1, "4 threads ({t4:?}) should beat 1 thread ({t1:?}) on a {hw}-core host");
    } else {
        eprintln!("only {hw} hardware thread(s): reporting timings without asserting speedup");
    }
}
