//! Tuner determinism suite: a tuning run is a pure function of
//! `(graph, search spec, seed)` — frontier, winner, and every reported
//! float are bit-identical across repeated runs *and* across thread
//! counts. Candidate order comes from deterministic enumeration, every
//! candidate runs with the master seed (so stage-cache prefix reuse is
//! invisible in the results — cache hits are bit-identical to cold runs),
//! and the rayon shim assembles parallel evaluation results in input
//! order, so nothing observable may depend on `SG_THREADS`.

use slimgraph::core::SchemeRegistry;
use slimgraph::graph::generators;
use slimgraph::tune::{tune, MetricKind, Target, TuneConfig, TuneOutcome};
use std::sync::{Arc, Mutex};

/// The worker-count override is process-global; tests serialize on it.
static KNOB: Mutex<()> = Mutex::new(());

/// Everything observable about an outcome, floats as raw IEEE-754 bits.
type Fingerprint = (Vec<(String, usize, u64, u64)>, Option<(String, usize, u64, u64, u64)>, usize);

fn fingerprint(out: &TuneOutcome) -> Fingerprint {
    let frontier = out
        .frontier
        .points()
        .iter()
        .map(|p| (p.rendered.clone(), p.edges, p.ratio.to_bits(), p.metric.to_bits()))
        .collect();
    let winner = out
        .winner
        .as_ref()
        .map(|w| (w.rendered.clone(), w.edges, w.ratio.to_bits(), w.metric.to_bits(), w.seed));
    (frontier, winner, out.evaluated)
}

fn search_cfg(budget: usize, metric: MetricKind, max: f64) -> TuneConfig {
    let mut cfg = TuneConfig::new(budget, Target { metric, max }, 0xD37);
    cfg.schemes = Some(vec!["uniform".into(), "spanner".into(), "lowdeg".into()]);
    cfg.rounds = 1;
    cfg.keep = 4;
    cfg
}

/// Runs the same search at 1, 4, and 8 threads and asserts bit-identical
/// outcomes (including the JSON rendering, which covers field formatting).
fn assert_thread_invariant(graph: &slimgraph::CsrGraph, cfg: &TuneConfig) -> TuneOutcome {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Arc::new(SchemeRegistry::with_defaults());
    rayon::set_num_threads(1);
    let baseline = tune(graph, &registry, cfg).expect("1-thread run");
    for threads in [4usize, 8] {
        rayon::set_num_threads(threads);
        let threaded = tune(graph, &registry, cfg).expect("threaded run");
        rayon::set_num_threads(0);
        assert_eq!(
            fingerprint(&threaded),
            fingerprint(&baseline),
            "tuning outcome at {threads} threads differs from the 1-thread baseline"
        );
        assert_eq!(threaded.to_json(), baseline.to_json());
    }
    rayon::set_num_threads(0);
    baseline
}

#[test]
fn pagerank_kl_search_is_thread_invariant() {
    let g = generators::barabasi_albert(500, 4, 11);
    let out = assert_thread_invariant(
        &g,
        &search_cfg(g.num_edges() * 2 / 3, MetricKind::PagerankKl, 0.2),
    );
    let w = out.winner.expect("generous KL target is feasible");
    assert!(w.edges <= g.num_edges() * 2 / 3);
    assert!(w.metric <= 0.2);
}

#[test]
fn degree_l1_search_is_thread_invariant_on_a_second_family() {
    let g = generators::watts_strogatz(400, 4, 0.1, 13);
    let out =
        assert_thread_invariant(&g, &search_cfg(g.num_edges() * 4 / 5, MetricKind::DegreeL1, 0.9));
    assert!(out.winner.is_some());
    assert!(!out.frontier.is_empty());
}

#[test]
fn infeasible_searches_are_thread_invariant_too() {
    // The infeasibility verdict and the reported frontier must be just as
    // deterministic as a successful search.
    let g = generators::erdos_renyi(300, 1200, 17);
    let mut cfg = search_cfg(1, MetricKind::DegreeL1, 0.0);
    cfg.rounds = 0;
    let out = assert_thread_invariant(&g, &cfg);
    assert!(out.winner.is_none());
    assert!(out.evaluated > 0);
}

#[test]
fn repeated_runs_and_reordered_scheme_lists_agree() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    rayon::set_num_threads(0);
    let g = generators::barabasi_albert(400, 3, 19);
    let registry = Arc::new(SchemeRegistry::with_defaults());
    let cfg = search_cfg(g.num_edges(), MetricKind::DegreeL1, 0.8);
    let a = tune(&g, &registry, &cfg).expect("run a");
    let b = tune(&g, &registry, &cfg).expect("run b");
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // The scheme list is a *set*: permuting it must not change anything.
    let mut shuffled = cfg.clone();
    shuffled.schemes = Some(vec!["spanner".into(), "lowdeg".into(), "uniform".into()]);
    let c = tune(&g, &registry, &shuffled).expect("run c");
    assert_eq!(fingerprint(&a), fingerprint(&c));
    // A different master seed is allowed to (and here does) change seeds.
    let mut reseeded = cfg.clone();
    reseeded.seed ^= 1;
    let d = tune(&g, &registry, &reseeded).expect("run d");
    assert_ne!(
        fingerprint(&a).1.map(|w| w.4),
        fingerprint(&d).1.map(|w| w.4),
        "winner pipeline seeds must derive from the master seed"
    );
}
