//! Session/stage-cache acceptance suite (the ISSUE 5 bar):
//!
//! 1. Cache-hit results are **bit-identical** to cold `Pipeline::apply`
//!    runs at `SG_THREADS` ∈ {1, 4} — edges, weights, and the composed
//!    vertex mapping.
//! 2. Prefix sharing actually *skips stages*, asserted via the session's
//!    stage reports: a second `compress` with a shared chain prefix
//!    executes strictly fewer stages than the chain has.

use slimgraph::core::cache::StageCache;
use slimgraph::core::{GraphCatalog, PipelineSpec, SchemeRegistry, SessionRun, SgSession};
use slimgraph::graph::generators;
use slimgraph::CsrGraph;
use std::sync::{Arc, Mutex};

/// The worker-count override is process-global; tests serialize on it.
static KNOB: Mutex<()> = Mutex::new(());

fn session_over(g: &CsrGraph) -> SgSession {
    let catalog = Arc::new(GraphCatalog::new());
    catalog.insert("g", g.clone(), "test graph").expect("insert");
    SgSession::new(catalog, Arc::new(SchemeRegistry::with_defaults()))
}

fn cold(spec: &str, g: &CsrGraph, seed: u64) -> slimgraph::PipelineResult {
    PipelineSpec::parse(spec)
        .expect("spec parses")
        .build(&SchemeRegistry::with_defaults())
        .expect("spec builds")
        .apply(g, seed)
}

fn run(session: &SgSession, spec: &str, seed: u64) -> SessionRun {
    session.run_named("g", &PipelineSpec::parse(spec).expect("parses"), seed).expect("runs")
}

/// Byte-level equality between a session run and a cold pipeline run:
/// edge list, weights (bit-compared), and composed vertex mapping.
fn assert_bit_identical(run: &SessionRun, reference: &slimgraph::PipelineResult, what: &str) {
    assert_eq!(
        run.graph.edge_slice(),
        reference.result.graph.edge_slice(),
        "{what}: edge lists differ"
    );
    let weights =
        |g: &CsrGraph| g.weight_slice().map(|w| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    assert_eq!(
        weights(&run.graph),
        weights(&reference.result.graph),
        "{what}: weights differ bitwise"
    );
    assert_eq!(
        run.vertex_mapping.as_deref().cloned(),
        reference.result.vertex_mapping,
        "{what}: composed vertex mappings differ"
    );
}

/// The acceptance scenario at one thread count.
fn shared_prefix_scenario(threads: usize) {
    rayon::set_num_threads(threads);
    let g = generators::planted_triangles(&generators::barabasi_albert(800, 4, 21), 600, 22);
    let session = session_over(&g);

    // Cold first request: three stages executed, none cached.
    let first_spec = "spanner:k=4,lowdeg,uniform:p=0.5";
    let first = run(&session, first_spec, 7);
    assert_eq!(first.stages_executed(), 3);
    assert_eq!(first.stages_cached(), 0);
    assert_bit_identical(&first, &cold(first_spec, &g, 7), "cold session run");

    // Second request sharing the 2-stage prefix: strictly fewer stages
    // executed, output bit-identical to its own cold run.
    let second_spec = "spanner:k=4,lowdeg,cut:k=2";
    let second = run(&session, second_spec, 7);
    assert_eq!(second.stages_cached(), 2, "shared prefix must be served from cache");
    assert_eq!(second.stages_executed(), 1, "only the divergent suffix executes");
    assert!(
        second.stages_executed() < PipelineSpec::parse(second_spec).expect("parses").len(),
        "strictly fewer stages than the chain length"
    );
    assert_bit_identical(&second, &cold(second_spec, &g, 7), "prefix-sharing run");

    // Exact repeat: zero stages executed, still byte-exact.
    let repeat = run(&session, first_spec, 7);
    assert_eq!(repeat.stages_executed(), 0);
    assert_eq!(repeat.stages_cached(), 3);
    assert_bit_identical(&repeat, &cold(first_spec, &g, 7), "fully cached run");

    // A weighted (reweighting) chain exercises the bit-compared weights.
    let weighted_spec = "spectral:p=0.4:reweight=true";
    let warm_up = run(&session, weighted_spec, 9);
    assert!(warm_up.graph.is_weighted());
    let weighted = run(&session, weighted_spec, 9);
    assert_eq!(weighted.stages_executed(), 0);
    assert_bit_identical(&weighted, &cold(weighted_spec, &g, 9), "cached weighted run");
}

#[test]
fn shared_prefixes_skip_stages_bit_identically_at_1_thread() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    shared_prefix_scenario(1);
    rayon::set_num_threads(0);
}

#[test]
fn shared_prefixes_skip_stages_bit_identically_at_4_threads() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    shared_prefix_scenario(4);
    rayon::set_num_threads(0);
}

#[test]
fn cache_state_never_leaks_across_thread_counts() {
    // A prefix computed at 4 threads must serve a request made at 1 thread
    // (and vice versa) with the same bytes — the cache key has no thread
    // dimension because results are thread-invariant.
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let g = generators::rmat_graph500(10, 8, 31);
    let session = session_over(&g);
    let spec = "spanner:k=8,uniform:p=0.4";

    rayon::set_num_threads(4);
    let computed_at_4 = run(&session, spec, 3);
    assert_eq!(computed_at_4.stages_executed(), 2);

    rayon::set_num_threads(1);
    let served_at_1 = run(&session, spec, 3);
    assert_eq!(served_at_1.stages_executed(), 0, "fully cached");
    assert_eq!(served_at_1.graph.edge_slice(), computed_at_4.graph.edge_slice());
    assert_bit_identical(&served_at_1, &cold(spec, &g, 3), "cross-thread-count cache hit");
    rayon::set_num_threads(0);
}

#[test]
fn vertex_mappings_compose_identically_through_the_cache() {
    // lowdeg twice removes everything on a star: the composed mapping must
    // come out of the cache exactly as a cold run composes it.
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    rayon::set_num_threads(0);
    let g = generators::star(6);
    let session = session_over(&g);
    let spec = "lowdeg,lowdeg";
    let warm_up = run(&session, spec, 1);
    assert_eq!(warm_up.graph.num_vertices(), 0);
    let cached = run(&session, spec, 1);
    assert_eq!(cached.stages_executed(), 0);
    let mapping = cached.vertex_mapping.as_deref().cloned().expect("composed mapping");
    assert_eq!(mapping.len(), 6);
    assert!(mapping.iter().all(Option::is_none), "everything removed");
    assert_bit_identical(&cached, &cold(spec, &g, 1), "vertex-removing cached run");

    // And the 1-stage prefix is reusable under the 2-stage entry.
    let prefix = run(&session, "lowdeg", 1);
    assert_eq!(prefix.stages_cached(), 1);
    assert_bit_identical(&prefix, &cold("lowdeg", &g, 1), "prefix-of-cached run");
}

#[test]
fn capacity_bounded_cache_stays_correct_under_eviction() {
    // A tiny cache forces evictions mid-sequence; every answer must still
    // equal its cold run (eviction is a perf event, not a semantic one).
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    rayon::set_num_threads(0);
    let g = generators::erdos_renyi(600, 2400, 41);
    let catalog = Arc::new(GraphCatalog::new());
    catalog.insert("g", g.clone(), "test graph").expect("insert");
    let session = SgSession::with_cache(
        catalog,
        Arc::new(SchemeRegistry::with_defaults()),
        Arc::new(StageCache::with_capacity(64 << 10)), // 64 KiB: a few entries
    );
    let specs = [
        "spanner:k=4,lowdeg,uniform:p=0.5",
        "spanner:k=4,lowdeg,uniform:p=0.3",
        "uniform:p=0.7,lowdeg",
        "spanner:k=4,lowdeg,cut:k=2",
        "spanner:k=4,lowdeg,uniform:p=0.5",
    ];
    for spec in specs {
        let out =
            session.run_named("g", &PipelineSpec::parse(spec).expect("parses"), 5).expect("runs");
        assert_bit_identical(&out, &cold(spec, &g, 5), spec);
    }
    assert!(session.cache().stats().evictions > 0, "the tiny cache must have evicted");
}
