//! Fault-injection suite (ISSUE 7): hostile raw-socket clients —
//! truncated frames, oversized frames, garbage JSON, wrong-typed JSON,
//! mid-upload disconnects, slow-loris byte-at-a-time writes — against a
//! live daemon. The daemon must answer stable error codes, reap the
//! offender within its deadline, and keep serving healthy clients
//! **bit-identically** afterward, at `SG_THREADS` ∈ {1, 4}.

use slimgraph::core::{PipelineSpec, SchemeRegistry};
use slimgraph::graph::generators;
use slimgraph::serve::{graph_digest, Client, Json, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The worker-count override is process-global; tests serialize on it.
static KNOB: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("slimgraph-serve-fault-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

fn spawn(cfg: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn fault_config() -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        read_timeout_ms: 400,
        max_frame_bytes: 0, // clamped to the 1 KiB floor by the server
        upload_grace_ms: 0, // partial uploads die with their connection
        ..Default::default()
    }
}

fn ok(response: &Json) -> &Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

fn error_code(response: &Json) -> String {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_default()
}

/// Reads everything until EOF (or timeout) and returns the first line.
fn read_first_line(stream: &mut TcpStream) -> String {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut collected = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                collected.extend_from_slice(&chunk[..n]);
                if collected.contains(&b'\n') {
                    break;
                }
            }
        }
    }
    String::from_utf8_lossy(&collected).lines().next().unwrap_or_default().to_string()
}

fn raw_roundtrip(addr: &str, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(payload).expect("send");
    read_first_line(&mut stream)
}

/// The core storm: every hostile client in sequence, then a healthy
/// client proving the daemon still answers bit-identical results.
fn fault_storm(threads: usize) {
    rayon::set_num_threads(threads);
    let g = generators::planted_triangles(&generators::barabasi_albert(400, 4, 71), 300, 72);
    let path = tmp(&format!("faults-{threads}.sgr"));
    slimgraph::store::save_sgr(&g, &path).expect("save input");
    let (addr, daemon) = spawn(fault_config());

    // Baseline healthy request before the storm.
    let spec = "spanner:k=4,uniform:p=0.5";
    let reference = {
        let pipeline = PipelineSpec::parse(spec)
            .expect("spec")
            .build(&SchemeRegistry::with_defaults())
            .expect("builds");
        format!("{:016x}", graph_digest(&pipeline.apply(&g, 5).result.graph))
    };
    let mut healthy = Client::connect(&addr).expect("connect");
    ok(&healthy
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(&path)),
        )
        .expect("load"));

    // 1. Truncated frame: bytes then silent disconnect — no response is
    //    owed, the daemon must simply survive.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(b"{\"op\":\"pi").expect("partial frame");
        drop(stream); // vanish mid-frame
    }

    // 2. Garbage JSON → stable bad-request.
    let response = Json::parse(&raw_roundtrip(&addr, b"%%% not json %%%\n")).expect("error JSON");
    assert_eq!(error_code(&response), "bad-request");

    // 3. Valid JSON, wrong types → stable bad-request (and for the seed,
    //    the message names the field).
    let response = Json::parse(&raw_roundtrip(
        &addr,
        b"{\"op\":\"compress\",\"graph\":42,\"spec\":\"uniform:p=0.5\"}\n",
    ))
    .expect("error JSON");
    assert_eq!(error_code(&response), "bad-request");
    let response = Json::parse(&raw_roundtrip(&addr, b"{\"op\":[1,2,3]}\n")).expect("error JSON");
    assert_eq!(error_code(&response), "bad-request");

    // 4. Oversized frame → frame-too-large, connection dropped.
    let mut big = vec![b'x'; 4096]; // over the 1 KiB floor
    big.push(b'\n');
    let response = Json::parse(&raw_roundtrip(&addr, &big)).expect("error JSON");
    assert_eq!(error_code(&response), "frame-too-large");

    // Oversized also without a newline (the cap must not wait for one).
    let response = Json::parse(&raw_roundtrip(&addr, &vec![b'y'; 4096])).expect("error JSON");
    assert_eq!(error_code(&response), "frame-too-large");

    // 5. Slow loris: a byte every 40 ms never finishes a frame; the
    //    400 ms frame deadline must cut it with a `timeout` error.
    {
        let started = Instant::now();
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_millis(10))).expect("timeout");
        let mut line = None;
        for _ in 0..100 {
            if stream.write_all(b"{").is_err() {
                break; // server already closed on us
            }
            let mut chunk = [0u8; 1024];
            match stream.read(&mut chunk) {
                Ok(n) if n > 0 => {
                    line = Some(String::from_utf8_lossy(&chunk[..n]).to_string());
                    break;
                }
                _ => {}
            }
            std::thread::sleep(Duration::from_millis(40));
        }
        let line = line.expect("loris got a final response");
        let response = Json::parse(line.lines().next().expect("line")).expect("error JSON");
        assert_eq!(error_code(&response), "timeout");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "loris reaped within the deadline (took {:?})",
            started.elapsed()
        );
    }

    // 6. Mid-upload disconnect: with zero grace the partial upload is
    //    reaped with its connection.
    {
        let mut uploader = Client::connect(&addr).expect("connect");
        ok(&uploader
            .request(
                &Client::request_for("upload")
                    .with("name", Json::str("partial"))
                    .with("phase", Json::str("begin"))
                    .with("total_bytes", Json::u64(1000))
                    .with("digest", Json::str("0000000000000000")),
            )
            .expect("begin"));
        drop(uploader); // vanish mid-upload
    }
    // Reap happens on the worker that served the connection; poll stats
    // briefly until the slot is gone.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = healthy.request(&Client::request_for("stats")).expect("stats");
        let pending = ok(&stats).get("uploads").and_then(Json::as_arr).expect("uploads").len();
        if pending == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "partial upload not reaped: {}", stats.render());
        std::thread::sleep(Duration::from_millis(50));
    }

    // After the storm: the healthy client's compress is bit-identical to
    // the direct run, on the same connection that watched it all.
    let response = healthy
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("g"))
                .with("spec", Json::str(spec))
                .with("seed", Json::u64(5)),
        )
        .expect("compress");
    assert_eq!(
        ok(&response).get("checksum").and_then(Json::as_str),
        Some(reference.as_str()),
        "post-storm output must byte-match the direct run"
    );

    // The daemon never panicked: shutdown still round-trips and the serve
    // loop exits cleanly (a leaked/poisoned worker would hang the join).
    ok(&healthy.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn fault_storm_at_1_thread() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    fault_storm(1);
    rayon::set_num_threads(0);
}

#[test]
fn fault_storm_at_4_threads() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    fault_storm(4);
    rayon::set_num_threads(0);
}

/// Satellite: the frame deadline must not cut clients that are merely
/// *idle* between requests — only mid-frame stalls are slow-loris.
#[test]
fn slow_but_legal_client_is_not_disconnected() {
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        read_timeout_ms: 200,
        ..Default::default()
    };
    let (addr, daemon) = spawn(cfg);
    let mut client = Client::connect(&addr).expect("connect");
    ok(&client.request(&Client::request_for("ping")).expect("first ping"));
    // Idle for 4x the frame deadline: no partial frame is buffered, so
    // no deadline applies.
    std::thread::sleep(Duration::from_millis(800));
    ok(&client.request(&Client::request_for("ping")).expect("ping after long idle"));
    // A frame written slowly but *within* the deadline is also legal.
    let frame = b"{\"op\":\"ping\"}\n";
    let (head, tail) = frame.split_at(5);
    let mut raw = TcpStream::connect(&addr).expect("connect");
    raw.write_all(head).expect("head");
    std::thread::sleep(Duration::from_millis(100)); // under the 200ms deadline
    raw.write_all(tail).expect("tail");
    let response = Json::parse(&read_first_line(&mut raw)).expect("response JSON");
    assert_eq!(response.get("pong").and_then(Json::as_bool), Some(true), "{}", response.render());
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

/// Stable code for a request that is valid JSON but declares a protocol
/// version outside the supported window — and v1 requests still served.
#[test]
fn version_window_is_enforced_but_v1_is_served() {
    let (addr, daemon) = spawn(fault_config());
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .request(&Json::obj().with("v", Json::u64(99)).with("op", Json::str("ping")))
        .expect("answered");
    assert_eq!(error_code(&response), "version");
    // A v1 client: response echoes v:1 and upload is invisible.
    let response = client
        .request(&Json::obj().with("v", Json::u64(1)).with("op", Json::str("ping")))
        .expect("answered");
    assert_eq!(ok(&response).get("v").and_then(Json::as_u64), Some(1), "v1 echoed");
    let response = client
        .request(
            &Json::obj()
                .with("v", Json::u64(1))
                .with("op", Json::str("upload"))
                .with("name", Json::str("g"))
                .with("phase", Json::str("commit")),
        )
        .expect("answered");
    assert_eq!(error_code(&response), "unknown-op", "upload needs v2");
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}
