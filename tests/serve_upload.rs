//! Chunked-upload suite (ISSUE 7): graphs pushed over the wire via the
//! v2 `upload` op must land **byte-identically** to a server-side
//! `load` of the same file — for raw and delta `.sgr` encodings and
//! text — and the transfer must survive reconnects (resume) while
//! rejecting corruption (digest mismatch).

use slimgraph::graph::generators;
use slimgraph::serve::{b64, graph_digest, Client, Json, ServeConfig, Server};
use slimgraph::store::{save_sgr, save_sgr_with, Encoding};
use std::time::Duration;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("slimgraph-serve-upload-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

fn spawn(cfg: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn daemon_config() -> ServeConfig {
    ServeConfig { listen: "127.0.0.1:0".into(), transcript: false, ..Default::default() }
}

fn ok(response: &Json) -> &Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

fn error_code(response: &Json) -> String {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_default()
}

fn sample_graph() -> slimgraph::CsrGraph {
    generators::planted_triangles(&generators::barabasi_albert(500, 5, 31), 400, 32)
}

/// Uploading a file and `load`-ing the same file server-side must yield
/// the same digest, and pipelines over both must write byte-identical
/// `.sgr` outputs — for raw `.sgr`, delta `.sgr`, and text inputs.
#[test]
fn upload_equals_server_side_load_across_encodings() {
    let g = sample_graph();
    let expected = format!("{:016x}", graph_digest(&g));

    let raw = tmp("eq-raw.sgr");
    save_sgr(&g, &raw).expect("save raw");
    let delta = tmp("eq-delta.sgr");
    save_sgr_with(&g, &delta, Encoding::Delta).expect("save delta");
    let text = tmp("eq-text.txt");
    slimgraph::graph::io::save_text(&g, &text).expect("save text");

    let (addr, daemon) = spawn(daemon_config());
    let mut client = Client::connect(&addr).expect("connect");

    for (label, path) in [("raw", &raw), ("delta", &delta), ("text", &text)] {
        let uploaded = format!("up-{label}");
        let loaded = format!("ld-{label}");
        // Small chunks force multiple frames even for small files.
        let response = client.upload(&uploaded, path, None, 4 << 10).expect(label);
        let response = ok(&response);
        assert_eq!(
            response.get("checksum").and_then(Json::as_str),
            Some(expected.as_str()),
            "{label}: uploaded copy digests identically"
        );
        assert_eq!(
            response.get("uploaded_bytes").and_then(Json::as_u64),
            Some(std::fs::metadata(path).expect("meta").len()),
            "{label}: byte count accounted"
        );
        ok(&client
            .request(
                &Client::request_for("load")
                    .with("name", Json::str(&loaded))
                    .with("path", Json::str(path.as_str())),
            )
            .expect("load"));

        // Same pipeline over both copies → byte-identical server files.
        let spec = "spanner:k=4,uniform:p=0.5";
        let out_up = tmp(&format!("out-up-{label}.sgr"));
        let out_ld = tmp(&format!("out-ld-{label}.sgr"));
        for (name, out) in [(&uploaded, &out_up), (&loaded, &out_ld)] {
            ok(&client
                .request(
                    &Client::request_for("compress")
                        .with("graph", Json::str(name.as_str()))
                        .with("spec", Json::str(spec))
                        .with("seed", Json::u64(3))
                        .with("output", Json::str(out.as_str())),
                )
                .expect("compress"));
        }
        assert_eq!(
            std::fs::read(&out_up).expect("read"),
            std::fs::read(&out_ld).expect("read"),
            "{label}: uploaded and loaded graphs compress to byte-identical files"
        );
    }
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

/// A transfer cut off mid-stream resumes after reconnect: re-`begin`
/// with the same `(total_bytes, digest)` adopts the orphaned slot and
/// reports the offset already received.
#[test]
fn interrupted_upload_resumes_after_reconnect() {
    let g = sample_graph();
    let path = tmp("resume.sgr");
    save_sgr(&g, &path).expect("save");
    let bytes = std::fs::read(&path).expect("read");
    let digest = format!("{:016x}", graph_digest(&g));
    let half = bytes.len() / 2;

    let (addr, daemon) = spawn(daemon_config()); // default 60s grace
    let begin = |name: &str| {
        Client::request_for("upload")
            .with("name", Json::str(name))
            .with("phase", Json::str("begin"))
            .with("total_bytes", Json::u64(bytes.len() as u64))
            .with("digest", Json::str(digest.clone()))
            .with("format", Json::str("sgr"))
    };

    // First attempt: ship half, then vanish.
    let mut first = Client::connect(&addr).expect("connect");
    let response = first.request(&begin("big")).expect("begin");
    assert_eq!(ok(&response).get("offset").and_then(Json::as_u64), Some(0));
    ok(&first
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("big"))
                .with("phase", Json::str("chunk"))
                .with("offset", Json::u64(0))
                .with("data", Json::str(b64::encode(&bytes[..half]))),
        )
        .expect("half chunk"));
    drop(first);

    // Second attempt: wait until the daemon has processed the disconnect
    // (the slot shows up orphaned in stats), then resume.
    let mut second = Client::connect(&addr).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = second.request(&Client::request_for("stats")).expect("stats");
        let orphaned = ok(&stats)
            .get("uploads")
            .and_then(Json::as_arr)
            .map(|u| {
                u.iter().any(|slot| slot.get("orphaned").and_then(Json::as_bool) == Some(true))
            })
            .unwrap_or(false);
        if orphaned {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "slot never orphaned: {}", stats.render());
        std::thread::sleep(Duration::from_millis(25));
    }
    let response = second.request(&begin("big")).expect("re-begin");
    let response = ok(&response);
    assert_eq!(
        response.get("offset").and_then(Json::as_u64),
        Some(half as u64),
        "resume reports the bytes already received"
    );
    assert_eq!(response.get("resumed").and_then(Json::as_bool), Some(true));
    ok(&second
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("big"))
                .with("phase", Json::str("chunk"))
                .with("offset", Json::u64(half as u64))
                .with("data", Json::str(b64::encode(&bytes[half..]))),
        )
        .expect("rest chunk"));
    let response = second
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("big"))
                .with("phase", Json::str("commit")),
        )
        .expect("commit");
    assert_eq!(
        ok(&response).get("checksum").and_then(Json::as_str),
        Some(digest.as_str()),
        "resumed upload digests identically"
    );
    ok(&second.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

/// A corrupted chunk is caught at commit by the digest check: the wire
/// answers `digest-mismatch` and the graph never enters the catalog.
#[test]
fn corrupted_chunk_is_rejected_at_commit() {
    let g = sample_graph();
    let path = tmp("corrupt.sgr");
    save_sgr(&g, &path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read");
    let digest = format!("{:016x}", graph_digest(&g));
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff; // flip one payload byte in transit

    let (addr, daemon) = spawn(daemon_config());
    let mut client = Client::connect(&addr).expect("connect");
    ok(&client
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("bad"))
                .with("phase", Json::str("begin"))
                .with("total_bytes", Json::u64(bytes.len() as u64))
                .with("digest", Json::str(digest))
                .with("format", Json::str("sgr")),
        )
        .expect("begin"));
    ok(&client
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("bad"))
                .with("phase", Json::str("chunk"))
                .with("offset", Json::u64(0))
                .with("data", Json::str(b64::encode(&bytes))),
        )
        .expect("chunk"));
    let response = client
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("bad"))
                .with("phase", Json::str("commit")),
        )
        .expect("commit answered");
    assert_eq!(error_code(&response), "digest-mismatch", "{}", response.render());

    // The corrupted graph must not be usable.
    let response = client
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("bad"))
                .with("spec", Json::str("uniform:p=0.5")),
        )
        .expect("answered");
    assert_eq!(error_code(&response), "unknown-graph", "{}", response.render());
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

/// Out-of-order and overrunning chunks answer stable `bad-request`
/// errors while duplicates of already-received bytes are tolerated
/// (retransmission after resume).
#[test]
fn chunk_sequencing_rules() {
    let g = sample_graph();
    let path = tmp("seq.sgr");
    save_sgr(&g, &path).expect("save");
    let bytes = std::fs::read(&path).expect("read");
    let digest = format!("{:016x}", graph_digest(&g));

    let (addr, daemon) = spawn(daemon_config());
    let mut client = Client::connect(&addr).expect("connect");
    ok(&client
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("seq"))
                .with("phase", Json::str("begin"))
                .with("total_bytes", Json::u64(bytes.len() as u64))
                .with("digest", Json::str(digest.clone()))
                .with("format", Json::str("sgr")),
        )
        .expect("begin"));
    let chunk = |offset: usize, data: &[u8]| {
        Client::request_for("upload")
            .with("name", Json::str("seq"))
            .with("phase", Json::str("chunk"))
            .with("offset", Json::u64(offset as u64))
            .with("data", Json::str(b64::encode(data)))
    };
    // A gap is rejected.
    let response = client.request(&chunk(100, &bytes[100..200])).expect("answered");
    assert_eq!(error_code(&response), "bad-request", "{}", response.render());
    // In-order is accepted; an exact duplicate is tolerated.
    ok(&client.request(&chunk(0, &bytes[..100])).expect("first"));
    let response = client.request(&chunk(0, &bytes[..100])).expect("dup");
    assert_eq!(ok(&response).get("received").and_then(Json::as_u64), Some(100));
    // Overrunning the declared size is rejected.
    let response = client.request(&chunk(100, &vec![0u8; bytes.len()])).expect("answered");
    assert_eq!(error_code(&response), "bad-request", "{}", response.render());
    // Commit before completion is rejected; abort cleans up.
    let response = client
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("seq"))
                .with("phase", Json::str("commit")),
        )
        .expect("answered");
    assert_eq!(error_code(&response), "bad-request", "{}", response.render());
    ok(&client
        .request(
            &Client::request_for("upload")
                .with("name", Json::str("seq"))
                .with("phase", Json::str("abort")),
        )
        .expect("abort"));
    let stats = client.request(&Client::request_for("stats")).expect("stats");
    assert_eq!(
        ok(&stats).get("uploads").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0),
        "abort removed the slot: {}",
        stats.render()
    );
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}
