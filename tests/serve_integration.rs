//! End-to-end daemon suite (the ISSUE 5 bar): spawn `sg-serve` on an
//! ephemeral socket, drive `load`/`compress`/`analyze`/`stats`/`evict`
//! over a real connection, and assert the responses **byte-match** direct
//! `Pipeline::apply` output — at `SG_THREADS` ∈ {1, 4}.

use slimgraph::core::{PipelineSpec, SchemeRegistry};
use slimgraph::graph::generators;
use slimgraph::serve::{graph_digest, Client, Json, ServeConfig, Server};
use slimgraph::CsrGraph;
use std::sync::Mutex;

/// The worker-count override is process-global; tests serialize on it.
static KNOB: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("slimgraph-serve-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

/// Binds a quiet daemon on an ephemeral TCP port and runs it on a thread.
fn spawn_daemon() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let cfg = ServeConfig { listen: "127.0.0.1:0".into(), transcript: false, ..Default::default() };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn cold(spec: &str, g: &CsrGraph, seed: u64) -> CsrGraph {
    PipelineSpec::parse(spec)
        .expect("spec parses")
        .build(&SchemeRegistry::with_defaults())
        .expect("spec builds")
        .apply(g, seed)
        .result
        .graph
}

fn ok(response: &Json) -> &Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

fn compress_request(graph: &str, spec: &str, seed: u64) -> Json {
    Client::request_for("compress")
        .with("graph", Json::str(graph))
        .with("spec", Json::str(spec))
        .with("seed", Json::u64(seed))
}

/// The full load → compress ×2 → analyze → stats → evict → shutdown
/// session at one thread count.
fn full_session_scenario(threads: usize) {
    rayon::set_num_threads(threads);
    let g = generators::planted_triangles(&generators::barabasi_albert(700, 4, 51), 500, 52);
    let sgr = tmp(&format!("serve-{threads}.sgr"));
    slimgraph::store::save_sgr(&g, &sgr).expect("write input");

    let (addr, daemon) = spawn_daemon();
    let mut client = Client::connect(&addr).expect("connect");

    // ping → load (twice: the second must be a no-op).
    ok(&client.request(&Client::request_for("ping")).expect("ping"));
    let load =
        Client::request_for("load").with("name", Json::str("g")).with("path", Json::str(&sgr));
    let first = client.request(&load).expect("load");
    assert_eq!(ok(&first).get("loaded").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("edges").and_then(Json::as_u64), Some(g.num_edges() as u64));
    let second = client.request(&load).expect("reload");
    assert_eq!(ok(&second).get("loaded").and_then(Json::as_bool), Some(false), "load-once");

    // compress #1 (cold): digest must byte-match the direct run, and the
    // server-side output file must byte-match a local save of it.
    let spec_a = "spanner:k=4,lowdeg,uniform:p=0.5";
    let out_path = tmp(&format!("serve-{threads}-a.sgr"));
    let response = client
        .request(&compress_request("g", spec_a, 7).with("output", Json::str(&out_path)))
        .expect("compress");
    let reference = cold(spec_a, &g, 7);
    assert_eq!(
        ok(&response).get("checksum").and_then(Json::as_str),
        Some(format!("{:016x}", graph_digest(&reference)).as_str()),
        "daemon output digest != direct Pipeline::apply digest"
    );
    assert_eq!(response.get("edges").and_then(Json::as_u64), Some(reference.num_edges() as u64));
    assert_eq!(response.get("stages_executed").and_then(Json::as_u64), Some(3));
    let local = tmp(&format!("serve-{threads}-a-local.sgr"));
    slimgraph::store::save_sgr(&reference, &local).expect("local save");
    assert_eq!(
        std::fs::read(&out_path).expect("server file"),
        std::fs::read(&local).expect("local file"),
        "server-side output file must byte-match the direct run's serialization"
    );

    // compress #2, shared 2-stage prefix: strictly fewer stages executed,
    // digest still equal to its own direct run.
    let spec_b = "spanner:k=4,lowdeg,cut:k=2";
    let response = client.request(&compress_request("g", spec_b, 7)).expect("compress b");
    assert_eq!(ok(&response).get("stages_cached").and_then(Json::as_u64), Some(2));
    assert_eq!(response.get("stages_executed").and_then(Json::as_u64), Some(1));
    let reference_b = cold(spec_b, &g, 7);
    assert_eq!(
        response.get("checksum").and_then(Json::as_str),
        Some(format!("{:016x}", graph_digest(&reference_b)).as_str()),
        "cache-hit output must byte-match a cold run"
    );
    let cached_flags: Vec<bool> = response
        .get("stages")
        .and_then(Json::as_arr)
        .expect("stage array")
        .iter()
        .map(|s| s.get("cached").and_then(Json::as_bool).expect("cached flag"))
        .collect();
    assert_eq!(cached_flags, vec![true, true, false], "per-stage cache flags");

    // analyze: metrics must match directly computed ones.
    let analyze = Client::request_for("analyze")
        .with("graph", Json::str("g"))
        .with("spec", Json::str("uniform:p=0.5"))
        .with("seed", Json::u64(9));
    let response = client.request(&analyze).expect("analyze");
    let compressed = cold("uniform:p=0.5", &g, 9);
    let metrics = ok(&response).get("metrics").expect("metrics object");
    let triangles = metrics.get("triangles").and_then(Json::as_arr).expect("triangle pair");
    assert_eq!(triangles[0].as_u64(), Some(slimgraph::algos::tc::count_triangles(&g)));
    assert_eq!(triangles[1].as_u64(), Some(slimgraph::algos::tc::count_triangles(&compressed)));
    let kl = metrics.get("pagerank_kl").and_then(Json::as_f64).expect("kl for same vertex set");
    let pr0 = slimgraph::algos::pagerank::pagerank_default(&g).scores;
    let pr1 = slimgraph::algos::pagerank::pagerank_default(&compressed).scores;
    assert_eq!(
        kl.to_bits(),
        slimgraph::metrics::kl_divergence(&pr0, &pr1).to_bits(),
        "daemon KL must bit-match the direct computation"
    );

    // stats: the graph is listed, the cache has entries and hits.
    let stats = client.request(&Client::request_for("stats")).expect("stats");
    let graphs = ok(&stats).get("graphs").and_then(Json::as_arr).expect("graphs");
    assert_eq!(graphs.len(), 1);
    assert_eq!(graphs[0].get("name").and_then(Json::as_str), Some("g"));
    let cache = stats.get("cache").expect("cache stats");
    assert!(cache.get("entries").and_then(Json::as_u64).expect("entries") > 0);
    assert!(cache.get("hits").and_then(Json::as_u64).expect("hits") > 0);

    // evict: the graph disappears and its cache entries are dropped;
    // compressing against it now fails with the stable code.
    let evict = Client::request_for("evict").with("graph", Json::str("g"));
    let response = client.request(&evict).expect("evict");
    assert!(
        ok(&response).get("cache_entries_dropped").and_then(Json::as_u64).expect("dropped") > 0
    );
    let gone = client.request(&compress_request("g", spec_a, 7)).expect("compress evicted");
    assert_eq!(gone.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        gone.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("unknown-graph")
    );

    // shutdown: acknowledged, daemon exits cleanly.
    let response = client.request(&Client::request_for("shutdown")).expect("shutdown");
    assert_eq!(ok(&response).get("shutting_down").and_then(Json::as_bool), Some(true));
    daemon.join().expect("daemon thread").expect("serve loop exits cleanly");
}

#[test]
fn full_session_over_tcp_at_1_thread() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    full_session_scenario(1);
    rayon::set_num_threads(0);
}

#[test]
fn full_session_over_tcp_at_4_threads() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    full_session_scenario(4);
    rayon::set_num_threads(0);
}

#[test]
fn protocol_errors_have_stable_codes_and_do_not_kill_the_connection() {
    let (addr, daemon) = spawn_daemon();
    let mut client = Client::connect(&addr).expect("connect");
    let code = |response: &Json| {
        response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_default()
    };
    let bad = Json::parse(&client.request_line("this is not json").expect("answered"))
        .expect("error response is valid JSON");
    assert_eq!(code(&bad), "bad-request");
    let unknown = client.request(&Client::request_for("frobnicate")).expect("answered");
    assert_eq!(code(&unknown), "unknown-op");
    let version = client
        .request(&Json::obj().with("v", Json::u64(99)).with("op", Json::str("ping")))
        .expect("answered");
    assert_eq!(code(&version), "version");
    let missing = client
        .request(&Client::request_for("load").with("name", Json::str("g")))
        .expect("answered");
    assert_eq!(code(&missing), "bad-request");
    let no_file = client
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str("/nonexistent/graph.sgr")),
        )
        .expect("answered");
    assert_eq!(code(&no_file), "io");
    let bad_spec = client
        .request(
            &Client::request_for("analyze")
                .with("graph", Json::str("missing"))
                .with("spec", Json::str("uniform:p=0.5")),
        )
        .expect("answered");
    assert_eq!(code(&bad_spec), "unknown-graph");
    // The connection survived all of that.
    ok(&client.request(&Client::request_for("ping")).expect("still alive"));
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn concurrent_clients_share_the_catalog_and_cache() {
    let g = generators::erdos_renyi(500, 2000, 61);
    let path = tmp("serve-concurrent.txt");
    slimgraph::graph::io::save_text(&g, &path).expect("save");
    let (addr, daemon) = spawn_daemon();

    // One client loads; many clients compress the same spec concurrently.
    let mut loader = Client::connect(&addr).expect("connect");
    ok(&loader
        .request(
            &Client::request_for("load")
                .with("name", Json::str("shared"))
                .with("path", Json::str(&path)),
        )
        .expect("load"));
    let reference = format!("{:016x}", graph_digest(&cold("spanner:k=4,uniform:p=0.5", &g, 3)));
    let digests: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let response = client
                        .request(&compress_request("shared", "spanner:k=4,uniform:p=0.5", 3))
                        .expect("compress");
                    response.get("checksum").and_then(Json::as_str).expect("checksum").to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for digest in &digests {
        assert_eq!(digest, &reference, "every concurrent client gets the exact cold-run bytes");
    }
    ok(&loader.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works_end_to_end() {
    let path = tmp("serve.sock");
    let cfg =
        ServeConfig { listen: format!("unix:{path}"), transcript: false, ..Default::default() };
    let server = Server::bind(&cfg).expect("bind unix socket");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).expect("connect over unix socket");
    ok(&client.request(&Client::request_for("ping")).expect("ping"));
    let stats = client.request(&Client::request_for("stats")).expect("stats");
    assert_eq!(ok(&stats).get("graphs").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
    assert!(!std::path::Path::new(&path).exists(), "socket file cleaned up");
}
