//! Raw vs encoded equivalence: a graph traversed through `.sgr` v2's
//! decode-on-the-fly adjacency (delta+varint sparse rows, bitmap dense
//! rows) must be indistinguishable — bit for bit — from the same graph in
//! raw CSR form, for every registered compression scheme, for pipelines,
//! and for the stage-2 algorithms, whether the encoded sections live on the
//! heap or borrow from an mmap, at any thread count.
//!
//! This is the acceptance gate of the encoded-adjacency subsystem: kernels
//! consume rows through the one `GraphView`/`NeighborCursor` API, decode
//! order is a pure function of the row index, and canonical edge ids are
//! defined by forward enumeration — so nothing downstream can tell the
//! representations apart. The suite also aims hostile sections at the
//! validators (truncated varints, gap overflow, malformed bitmaps, wrong
//! container versions) and requires clean rejections, never garbage graphs.

use slimgraph::algos::{bfs, cc, pagerank, tc};
use slimgraph::core::{SchemeParams, SchemeRegistry};
use slimgraph::graph::{
    generators, properties, CsrGraph, EdgeList, EncodedAdjacencyParts, EncodedCsr, Section,
};
use slimgraph::store::{
    load_sgr, load_sgr_bytes, load_sgr_encoded, load_sgr_encoded_bytes, save_sgr_with,
    to_sgr_bytes, to_sgr_bytes_with, Encoding, MmapEncoded,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// The worker-count override is process-global; tests in this binary run
/// concurrently, so every test serializes on this lock.
static KNOB: Mutex<()> = Mutex::new(());

/// Thread counts each raw-vs-encoded comparison runs under.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn with_threads(f: impl Fn(usize)) {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    for &t in &THREAD_COUNTS {
        rayon::set_num_threads(t);
        f(t);
    }
    rayon::set_num_threads(0);
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("slimgraph-encoding-equivalence");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Skewed degrees: hubs cross the bitmap threshold, leaves stay delta rows.
fn unweighted() -> CsrGraph {
    generators::barabasi_albert(1500, 4, 0x6106)
}

fn weighted() -> CsrGraph {
    generators::with_random_weights(&generators::erdos_renyi(1200, 6000, 0x6107), 0.5, 4.5, 11)
}

fn directed() -> CsrGraph {
    // Deterministic pseudo-random arcs; duplicates collapse in EdgeList.
    let n = 900u32;
    let mut x = 0x9e37_79b9u64;
    let mut pairs = Vec::new();
    for _ in 0..5000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = (x >> 33) as u32 % n;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (x >> 33) as u32 % n;
        if u != v {
            pairs.push((u, v));
        }
    }
    CsrGraph::from_edge_list_directed(EdgeList::from_pairs(n as usize, pairs))
}

/// Writes `g` as a v2 file and returns (heap-decoded, mmap-backed) encoded
/// twins.
fn encoded_twins(g: &CsrGraph, name: &str) -> (EncodedCsr, EncodedCsr) {
    let path = tmp(name);
    save_sgr_with(g, &path, Encoding::Delta).expect("save v2");
    let heap = load_sgr_encoded(&path).expect("heap encoded load");
    let mapped = MmapEncoded::open(&path).expect("mmap encoded load");
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    assert!(mapped.is_zero_copy(), "v2 mmap loader must borrow the byte sections");
    (heap, mapped.into_encoded())
}

fn pr_bits<G: slimgraph::graph::GraphView>(g: &G) -> Vec<u64> {
    pagerank::pagerank_default(g).scores.iter().map(|x| x.to_bits()).collect()
}

fn weight_bits(g: &CsrGraph) -> Option<Vec<u32>> {
    g.weight_slice().map(|w| w.iter().map(|x| x.to_bits()).collect())
}

#[test]
fn kernels_bit_identical_raw_vs_encoded() {
    for (g, name) in [
        (unweighted(), "kernels-u.sgr"),
        (weighted(), "kernels-w.sgr"),
        (directed(), "kernels-d.sgr"),
    ] {
        let (heap, mapped) = encoded_twins(&g, name);
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap_or(0);
        with_threads(|t| {
            for (label, e) in [("heap", &heap), ("mmap", &mapped)] {
                assert_eq!(pr_bits(&g), pr_bits(e), "PageRank {name}/{label} at {t} threads");

                // Parallel BFS parents race among equal-depth candidates,
                // so bit-identity is pinned on parallel depths plus the
                // sequential traversal (fixed iteration order).
                let br = bfs::bfs_parallel(&g, root);
                let be = bfs::bfs_parallel(e, root);
                assert_eq!(br.depth, be.depth, "BFS depths {name}/{label} at {t} threads");
                assert_eq!(br.reached, be.reached);
                let sr = bfs::bfs(&g, root);
                let se = bfs::bfs(e, root);
                assert_eq!(sr.parent, se.parent, "seq BFS parents {name}/{label} at {t} threads");

                let cr = cc::connected_components(&g);
                let ce = cc::connected_components(e);
                assert_eq!(cr.labels, ce.labels, "CC labels {name}/{label} at {t} threads");

                if !g.is_directed() {
                    assert_eq!(
                        tc::count_triangles(&g),
                        tc::count_triangles(e),
                        "triangle count {name}/{label} at {t} threads"
                    );
                }
                assert_eq!(
                    properties::degree_stats(&g),
                    properties::degree_stats(e),
                    "degree stats {name}/{label} at {t} threads"
                );
            }
        });
    }
}

#[test]
fn every_registry_scheme_and_pipeline_identical_after_v2_round_trip() {
    let registry = SchemeRegistry::with_defaults();
    for (g, name) in [(unweighted(), "schemes-u.sgr"), (weighted(), "schemes-w.sgr")] {
        let (heap, mapped) = encoded_twins(&g, name);
        // Decoding the v2 sections back to raw CSR must reproduce the exact
        // canonical graph (edge ids included) — on top of which every
        // scheme, being deterministic in (seed, element id), must behave
        // identically.
        let twins = [("heap", heap.to_csr()), ("mmap", mapped.to_csr())];
        for (label, back) in &twins {
            assert_eq!(g.edge_slice(), back.edge_slice(), "{name}/{label} edges");
            assert_eq!(weight_bits(&g), weight_bits(back), "{name}/{label} weights");
        }
        with_threads(|t| {
            for scheme_name in registry.names() {
                let scheme =
                    registry.create(scheme_name, &SchemeParams::new()).expect("known scheme");
                let want = scheme.apply(&g, 42);
                for (label, back) in &twins {
                    let got = scheme.apply(back, 42);
                    assert_eq!(
                        want.graph.edge_slice(),
                        got.graph.edge_slice(),
                        "scheme {scheme_name} diverged on {name}/{label} at {t} threads"
                    );
                    assert_eq!(
                        weight_bits(&want.graph),
                        weight_bits(&got.graph),
                        "scheme {scheme_name} weights diverged on {name}/{label} at {t} threads"
                    );
                }
            }
        });
    }
    let pipeline = SchemeRegistry::with_defaults()
        .parse_pipeline("spanner:k=4,lowdeg,uniform:p=0.6", &SchemeParams::new())
        .expect("pipeline parses");
    let g = unweighted();
    let (heap, _) = encoded_twins(&g, "pipeline.sgr");
    let back = heap.to_csr();
    with_threads(|t| {
        let a = pipeline.apply(&g, 7);
        let b = pipeline.apply(&back, 7);
        assert_eq!(
            a.result.graph.edge_slice(),
            b.result.graph.edge_slice(),
            "pipeline diverged after v2 round trip at {t} threads"
        );
    });
}

#[test]
fn v2_files_load_transparently_as_raw_graphs() {
    let g = weighted();
    let path = tmp("transparent.sgr");
    save_sgr_with(&g, &path, Encoding::Delta).expect("save v2");
    let back = load_sgr(&path).expect("v1-style entry point accepts v2");
    assert_eq!(g.edge_slice(), back.edge_slice());
    assert_eq!(g.csr_offsets(), back.csr_offsets());
    assert_eq!(weight_bits(&g), weight_bits(&back));
}

// --- hostile sections ------------------------------------------------------

/// One delta row of `degree` targets encoded as `blob`, the other `n - 1`
/// rows empty. `n` is large enough that a small degree stays delta-class.
fn one_row_parts(n: usize, blob: Vec<u8>, degree: u32) -> EncodedAdjacencyParts {
    let mut row_starts = vec![blob.len(); n + 1];
    row_starts[0] = 0;
    let mut degrees = vec![0u32; n];
    degrees[0] = degree;
    EncodedAdjacencyParts {
        row_starts: Section::from(row_starts),
        degrees: Section::from(degrees),
        blob: Section::from(blob),
    }
}

fn expect_rejected(parts: EncodedAdjacencyParts, n: usize, what: &str) {
    let err = EncodedCsr::from_parts(false, n, 1, parts, None, None)
        .err()
        .unwrap_or_else(|| panic!("{what} must be rejected"));
    assert!(!err.is_empty(), "{what} rejection must carry a message");
}

#[test]
fn hostile_rows_are_rejected_not_decoded() {
    // Truncated varint: a continuation byte with no tail.
    expect_rejected(one_row_parts(100, vec![0x80], 1), 100, "truncated varint");
    // Varint decodes past n (gap overflow): 1000 >= n = 100.
    expect_rejected(one_row_parts(100, vec![0xe8, 0x07], 1), 100, "gap overflow");
    // Zero gap after the first target: a duplicate neighbor.
    expect_rejected(one_row_parts(100, vec![5, 0], 2), 100, "duplicate target");
    // Trailing garbage after the declared degree.
    expect_rejected(one_row_parts(100, vec![5, 1, 1], 2), 100, "trailing row bytes");
    // Bitmap-class row (64 * degree > n) with the wrong byte length:
    // bitmap_row_bytes(128) = 16, so 24 blob bytes are oversized.
    expect_rejected(one_row_parts(128, vec![0u8; 24], 20), 128, "oversized bitmap");
    // Bitmap with a bit set at or past n (bit 100 of an n = 96 bitmap).
    let mut bm = vec![0u8; 16];
    bm[12] = 0x10; // bit 100
    bm[0] = 0x01; // bit 0
    expect_rejected(one_row_parts(96, bm, 2), 96, "bitmap bit past n");
}

#[test]
fn container_versions_reject_cleanly_both_ways() {
    let g = unweighted();
    let v1 = to_sgr_bytes(&g);
    let v2 = to_sgr_bytes_with(&g, Encoding::Delta);

    // The v2-only entry point must reject a v1 image...
    let err = load_sgr_encoded_bytes(&v1).expect_err("v2 reader must reject v1");
    assert!(err.to_string().contains("version"), "got: {err}");
    // ...and an unknown future version must be rejected by every reader.
    let mut v3 = v2.clone();
    v3[8] = 3;
    assert!(load_sgr_bytes(&v3).is_err(), "raw reader must reject version 3");
    assert!(load_sgr_encoded_bytes(&v3).is_err(), "encoded reader must reject version 3");

    // A flipped payload byte must fail the checksum, not decode quietly.
    // Inter-section padding is under 8 bytes and always shares its aligned
    // word with payload, so corrupting one full aligned word mid-file is
    // guaranteed to touch checksummed bytes.
    let mut corrupt = v2.clone();
    let word = (corrupt.len() / 2) & !7;
    for b in &mut corrupt[word..word + 8] {
        *b ^= 0xff;
    }
    assert!(load_sgr_bytes(&corrupt).is_err(), "corrupt v2 payload must fail verification");
}
