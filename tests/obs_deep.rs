//! Deep-observability suite for the PR-9 diagnosis layer: request
//! trace-id correlation across all three span levels, the slow-request
//! log (capture + ring bound), and allocation profiling (per-stage
//! deltas + gauges) — all under the standing neutrality contract:
//! results stay **bit-identical** with every knob on or off, at
//! `SG_THREADS` ∈ {1, 4}.
//!
//! The tracing flag, the profiling flag, and the worker-count override
//! are process-global, so every test serializes on one lock.

use slimgraph::core::{GraphCatalog, PipelineSpec, SchemeRegistry, SgSession, StageCache};
use slimgraph::graph::generators;
use slimgraph::serve::{graph_digest, Client, Json, ServeConfig, Server};
use slimgraph::CsrGraph;
use std::sync::{Arc, Mutex};

static KNOB: Mutex<()> = Mutex::new(());

/// Restores the documented out-of-the-box state (metrics on, tracing
/// off, profiling off) for sibling tests in this binary.
fn restore_obs() {
    slimgraph::obs::set_metrics_enabled(true);
    slimgraph::obs::trace::set_trace_enabled(false);
    slimgraph::obs::alloc::set_profiling(false);
}

/// (vertex count, edge list, weight bits, content digest) — every part
/// of a graph that "bit-identical" covers.
type Fingerprint = (usize, Vec<(u32, u32)>, Option<Vec<u64>>, u64);

fn fingerprint(g: &CsrGraph) -> Fingerprint {
    (
        g.num_vertices(),
        g.edge_slice().to_vec(),
        g.weight_slice().map(|w| w.iter().map(|x| u64::from(x.to_bits())).collect()),
        graph_digest(g),
    )
}

/// Runs a chained pipeline through the session layer (cache enabled, so
/// stage spans and per-stage alloc deltas fire) and fingerprints the
/// result.
fn session_compress(g: &Arc<CsrGraph>, spec: &str, seed: u64) -> Fingerprint {
    let catalog = Arc::new(GraphCatalog::new());
    let handle = catalog.insert_arc("g", Arc::clone(g), "mem").expect("fresh name");
    let session = SgSession::with_cache(
        catalog,
        Arc::new(SchemeRegistry::with_defaults()),
        Arc::new(StageCache::with_capacity(sg_core::cache::DEFAULT_CACHE_BYTES)),
    );
    let spec = PipelineSpec::parse(spec).expect("spec parses");
    let run = session.run(&handle, &spec, seed).expect("run");
    fingerprint(&run.graph)
}

fn spawn_daemon(cfg: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn quiet_config() -> ServeConfig {
    ServeConfig { listen: "127.0.0.1:0".into(), transcript: false, ..Default::default() }
}

fn ok(response: Json) -> Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

/// Saves a small BA graph and loads it into the daemon as `g`.
fn load_graph(client: &mut Client, tag: &str) {
    let g = generators::barabasi_albert(600, 4, 77);
    let dir = std::env::temp_dir().join(format!("slimgraph-obs-deep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("g-{tag}.sgr"));
    slimgraph::store::save_sgr(&g, &path).expect("save");
    ok(client
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(path.to_string_lossy().into_owned())),
        )
        .expect("load"));
}

/// Every complete (`ph == "X"`) span in the current trace export, as
/// `(name, args)` pairs.
fn exported_spans() -> Vec<(String, Json)> {
    let text = slimgraph::obs::trace::chrome_trace_json();
    let parsed = Json::parse(&text).expect("trace is valid JSON");
    parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| {
            (
                e.get("name").and_then(Json::as_str).expect("name").to_string(),
                e.get("args").cloned().unwrap_or_else(Json::obj),
            )
        })
        .collect()
}

/// Tentpole #1: a client-supplied envelope `"id"` shows up as the
/// `trace` arg on the request's `serve.request`, `session.run`, **and**
/// `session.stage` spans, and id-less requests get a server-generated
/// `srv-N` id — at 1 and 4 worker threads.
#[test]
fn trace_id_correlates_all_three_span_levels() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        slimgraph::obs::trace::set_trace_enabled(true);
        slimgraph::obs::trace::reset();

        let (addr, daemon) = spawn_daemon(quiet_config());
        let mut client = Client::connect(&addr).expect("connect");
        load_graph(&mut client, &format!("trace-{threads}"));
        let id = format!("req-deep-{threads}");
        ok(client
            .request(
                &Client::request_for("compress")
                    .with("id", Json::str(id.clone()))
                    .with("graph", Json::str("g"))
                    .with("spec", Json::str("spanner:k=4,uniform:p=0.5"))
                    .with("seed", Json::u64(7)),
            )
            .expect("compress"));
        // An id-less request must still get a correlatable (generated) id.
        ok(client.request(&Client::request_for("ping")).expect("ping"));
        let _ = client.request(&Client::request_for("shutdown"));
        daemon.join().expect("daemon").expect("clean exit");
        slimgraph::obs::trace::set_trace_enabled(false);

        let spans = exported_spans();
        let tagged = |name: &str| {
            spans
                .iter()
                .filter(|(n, args)| {
                    n == name && args.get("trace").and_then(Json::as_str) == Some(id.as_str())
                })
                .count()
        };
        assert!(tagged("serve.request") >= 1, "serve.request tagged {id} ({threads} threads)");
        assert!(tagged("session.run") >= 1, "session.run tagged {id} ({threads} threads)");
        assert!(tagged("session.stage") >= 2, "every stage span tagged {id} ({threads} threads)");
        let generated = spans.iter().any(|(n, args)| {
            n == "serve.request"
                && args.get("trace").and_then(Json::as_str).is_some_and(|t| t.starts_with("srv-"))
        });
        assert!(generated, "id-less requests carry a server-generated srv-N trace id");
    }
    rayon::set_num_threads(0);
    restore_obs();
    slimgraph::obs::trace::reset();
}

/// Tentpole #2: with `--slow-ms 0` every request lands in the slowlog
/// (the injection mechanism), the ring keeps only the newest `capacity`
/// records while `recorded` counts everything, and a compress record
/// carries its trace id + stage accounting. A prohibitively high
/// threshold records nothing.
#[test]
fn slowlog_captures_requests_and_respects_ring_bound() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    slimgraph::obs::set_metrics_enabled(true);

    let mut cfg = quiet_config();
    cfg.slow_ms = 0;
    cfg.slowlog_capacity = 4;
    let (addr, daemon) = spawn_daemon(cfg);
    let mut client = Client::connect(&addr).expect("connect");
    load_graph(&mut client, "slowlog");
    for _ in 0..6 {
        ok(client.request(&Client::request_for("ping")).expect("ping"));
    }
    ok(client
        .request(
            &Client::request_for("compress")
                .with("id", Json::str("slow-compress"))
                .with("graph", Json::str("g"))
                .with("spec", Json::str("spanner:k=4,uniform:p=0.5"))
                .with("seed", Json::u64(7)),
        )
        .expect("compress"));
    let response = ok(client.request(&Client::request_for("slowlog")).expect("slowlog"));
    let recorded = response.get("recorded").and_then(Json::as_u64).expect("recorded");
    let returned = response.get("returned").and_then(Json::as_u64).expect("returned");
    let records = response.get("slowlog").and_then(Json::as_arr).expect("slowlog array");
    assert!(recorded >= 8, "load + 6 pings + compress all qualified at slow_ms=0, got {recorded}");
    assert_eq!(returned, 4, "ring bounded at capacity");
    assert_eq!(records.len(), 4);
    let seqs: Vec<u64> =
        records.iter().map(|r| r.get("seq").and_then(Json::as_u64).expect("seq")).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs monotone: {seqs:?}");
    assert_eq!(*seqs.last().expect("nonempty"), recorded, "newest record retained");
    assert!(seqs[0] > 1, "oldest records aged out of the bounded ring");
    let newest = records.last().expect("newest");
    assert_eq!(newest.get("op").and_then(Json::as_str), Some("compress"));
    assert_eq!(newest.get("trace").and_then(Json::as_str), Some("slow-compress"));
    assert!(newest.get("service_ms").and_then(Json::as_f64).is_some());
    assert!(newest.get("queue_wait_ms").and_then(Json::as_f64).is_some());
    assert_eq!(newest.get("graph").and_then(Json::as_str), Some("g"));
    assert!(newest.get("stages_executed").and_then(Json::as_u64).is_some());
    assert!(newest.get("stages_cached").and_then(Json::as_u64).is_some());
    // The qualifying requests also moved the serve.slow_requests counter.
    let metrics = ok(client.request(&Client::request_for("metrics")).expect("metrics"));
    let slow = metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.slow_requests"))
        .and_then(Json::as_u64)
        .expect("serve.slow_requests counter");
    assert!(slow >= recorded, "counter covers every qualifying request");
    let _ = client.request(&Client::request_for("shutdown"));
    daemon.join().expect("daemon").expect("clean exit");

    // A threshold nothing can meet records nothing.
    let mut cfg = quiet_config();
    cfg.slow_ms = 10_000_000;
    let (addr, daemon) = spawn_daemon(cfg);
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..3 {
        ok(client.request(&Client::request_for("ping")).expect("ping"));
    }
    let response = ok(client.request(&Client::request_for("slowlog")).expect("slowlog"));
    assert_eq!(response.get("recorded").and_then(Json::as_u64), Some(0));
    assert_eq!(
        response.get("slowlog").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0),
        "nothing qualifies under a prohibitive threshold"
    );
    let _ = client.request(&Client::request_for("shutdown"));
    daemon.join().expect("daemon").expect("clean exit");
    restore_obs();
}

/// Tentpole #3: with the tracking allocator armed, compress runs report
/// nonzero alloc gauges and per-stage byte deltas — and the compressed
/// output stays bit-identical with profiling on and off, at 1 and 4
/// threads.
#[test]
fn alloc_profiling_reports_gauges_and_stays_bit_identical() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    slimgraph::obs::set_metrics_enabled(true);
    let g = Arc::new(generators::barabasi_albert(700, 4, 23));
    const SPEC: &str = "spanner:k=4,lowdeg,uniform:p=0.5";
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        slimgraph::obs::alloc::set_profiling(false);
        let baseline = session_compress(&g, SPEC, 13);

        slimgraph::obs::alloc::reset();
        slimgraph::obs::alloc::set_profiling(true);
        let profiled = session_compress(&g, SPEC, 13);
        slimgraph::obs::alloc::set_profiling(false);
        assert_eq!(baseline, profiled, "profiling changed the result at {threads} threads");

        // The umbrella crate installs sg-obs's tracking allocator for
        // this test binary, so a compress run must have moved every
        // cumulative counter.
        let stats = slimgraph::obs::alloc::stats();
        assert!(stats.allocated_bytes > 0, "allocated_bytes counted ({threads} threads)");
        assert!(stats.allocs > 0, "alloc calls counted ({threads} threads)");
        assert!(stats.peak_bytes > 0, "peak live bytes tracked ({threads} threads)");
        assert!(stats.peak_bytes >= stats.live_bytes, "peak dominates live ({threads} threads)");
    }

    // Gauges surface through the shared snapshot while profiling is on…
    slimgraph::obs::alloc::set_profiling(true);
    let snap = slimgraph::obs::global_snapshot();
    let gauge =
        |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v).expect(name);
    assert!(gauge("alloc.allocated_bytes") > 0);
    assert!(gauge("alloc.peak_bytes") > 0);
    assert!(gauge("alloc.allocs") > 0);
    slimgraph::obs::alloc::set_profiling(false);
    // …and disappear when it is off (observation stays opt-in).
    let snap = slimgraph::obs::global_snapshot();
    assert!(
        !snap.gauges.iter().any(|(n, _)| n.starts_with("alloc.")),
        "alloc gauges absent while profiling is off"
    );

    // Per-stage deltas landed as session.stage_alloc_bytes.<scheme>
    // counters (attribution comes from the profiled runs above).
    let counters = &slimgraph::obs::global_snapshot().counters;
    for scheme in ["spanner", "lowdeg", "uniform"] {
        let name = format!("session.stage_alloc_bytes.{scheme}");
        let value = counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v);
        assert!(value.is_some_and(|v| v > 0), "{name} recorded a nonzero delta: {value:?}");
    }
    rayon::set_num_threads(0);
    restore_obs();
}
