//! Property-based integration tests: the paper's invariants under random
//! workloads (proptest drives the generators and parameters).

use proptest::prelude::*;
use sg_algos::{cc, mst, sssp, tc};
use sg_core::schemes::{
    spanner, summarize, triangle_reduce, uniform_sample, SummarizationConfig, TrConfig,
};
use sg_graph::generators;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// EO Triangle Reduction never changes the number of connected
    /// components, for any graph, p, and seed (§6.1).
    #[test]
    fn eo_tr_preserves_components(
        n in 50usize..300,
        extra in 0usize..400,
        p in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let base = generators::erdos_renyi(n, 2 * n, seed);
        let g = generators::planted_triangles(&base, extra, seed ^ 1);
        let before = cc::connected_components(&g).num_components;
        let r = triangle_reduce(&g, TrConfig::edge_once_1(p), seed ^ 2);
        let after = cc::connected_components(&r.graph).num_components;
        prop_assert_eq!(before, after);
    }

    /// Max-weight EO-TR preserves the exact MST weight (§4.3).
    #[test]
    fn maxweight_tr_preserves_mst(
        n in 30usize..200,
        seed in 0u64..1000,
        p in 0.1f64..=1.0,
    ) {
        let base = generators::planted_triangles(
            &generators::erdos_renyi(n, 3 * n, seed), n, seed ^ 3);
        let g = generators::with_random_weights(&base, 1.0, 50.0, seed ^ 4);
        let w0 = mst::minimum_spanning_forest(&g).total_weight;
        let r = triangle_reduce(&g, TrConfig::max_weight(p), seed ^ 5);
        let w1 = mst::minimum_spanning_forest(&r.graph).total_weight;
        prop_assert!((w0 - w1).abs() < 1e-2, "MST {} -> {}", w0, w1);
    }

    /// EO-TR stretches shortest paths by at most 2x (§6.1).
    #[test]
    fn eo_tr_stretch_bound(n in 50usize..200, seed in 0u64..500) {
        let g = generators::watts_strogatz(n, 4, 0.1, seed);
        let r = triangle_reduce(&g, TrConfig::edge_once_1(1.0), seed ^ 6);
        let before = sssp::dijkstra(&g, 0);
        let after = sssp::dijkstra(&r.graph, 0);
        for (b, a) in before.iter().zip(&after) {
            if b.is_finite() {
                prop_assert!(a.is_finite());
                prop_assert!(*a <= 2.0 * *b + 1e-9);
            }
        }
    }

    /// Spanners never disconnect the graph (§6.3).
    #[test]
    fn spanner_preserves_components(
        scale in 7u32..10,
        ef in 4usize..10,
        k in 2.0f64..64.0,
        seed in 0u64..500,
    ) {
        let g = generators::rmat_graph500(scale, ef, seed);
        let before = cc::connected_components(&g).num_components;
        let r = spanner(&g, k, seed ^ 7);
        let after = cc::connected_components(&r.graph).num_components;
        prop_assert_eq!(before, after);
    }

    /// Uniform sampling keeps (1-p)m edges in expectation; per-run count
    /// concentrated within 10% of m.
    #[test]
    fn uniform_edge_count_concentrates(p in 0.05f64..0.95, seed in 0u64..500) {
        let g = generators::erdos_renyi(800, 8000, seed);
        let r = uniform_sample(&g, p, seed ^ 8);
        let expected = (1.0 - p) * g.num_edges() as f64;
        let got = r.graph.num_edges() as f64;
        prop_assert!((got - expected).abs() < 0.1 * g.num_edges() as f64,
            "got {} expected {}", got, expected);
    }

    /// Summarization's reconstruction error respects the 2 eps m bound, and
    /// eps = 0 is lossless (§4.5.4, Table 3).
    #[test]
    fn summarization_error_bounded(
        n in 50usize..250,
        eps in 0.0f64..0.3,
        seed in 0u64..500,
    ) {
        let g = generators::barabasi_albert(n, 3, seed);
        let s = summarize(&g, SummarizationConfig { epsilon: eps, max_iterations: 6, seed });
        let err = s.reconstruction_error(&g) as f64;
        prop_assert!(err <= 2.0 * eps * g.num_edges() as f64 + 1e-9);
        if eps == 0.0 {
            prop_assert_eq!(err as usize, 0);
        }
    }

    /// Triangle count under uniform sampling is non-increasing and zero
    /// triangles survive full removal.
    #[test]
    fn sampling_triangle_monotonicity(seed in 0u64..200) {
        let g = generators::planted_triangles(
            &generators::erdos_renyi(300, 900, seed), 500, seed ^ 9);
        let t0 = tc::count_triangles(&g);
        let half = uniform_sample(&g, 0.5, seed ^ 10);
        prop_assert!(tc::count_triangles(&half.graph) <= t0);
        let all = uniform_sample(&g, 1.0, seed ^ 11);
        prop_assert_eq!(tc::count_triangles(&all.graph), 0);
    }
}
