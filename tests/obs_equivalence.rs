//! Observability-neutrality suite: telemetry (sg-obs metrics + span
//! tracing) is observation-only. Every compress/analyze/serve result
//! must be **bit-identical** with telemetry fully enabled and fully
//! disabled, at `SG_THREADS` ∈ {1, 4} — and timestamps must never leak
//! into digests. On top, the Chrome trace export must be well-formed
//! JSON whose same-thread spans nest properly.
//!
//! The metrics flag, the tracing flag, and the worker-count override are
//! all process-global, so every test serializes on one lock.

use slimgraph::core::{GraphCatalog, PipelineSpec, SchemeRegistry, SgSession, StageCache};
use slimgraph::graph::generators;
use slimgraph::serve::{graph_digest, Client, Json, ServeConfig, Server};
use slimgraph::CsrGraph;
use std::sync::{Arc, Mutex};

static KNOB: Mutex<()> = Mutex::new(());

/// Telemetry settings compared: everything off vs everything on.
const OBS_MODES: [bool; 2] = [false, true];

fn set_obs(enabled: bool) {
    slimgraph::obs::set_metrics_enabled(enabled);
    slimgraph::obs::trace::set_trace_enabled(enabled);
}

/// Restores the defaults (metrics on, tracing off) so sibling test
/// binaries observe the documented out-of-the-box state.
fn restore_obs() {
    slimgraph::obs::set_metrics_enabled(true);
    slimgraph::obs::trace::set_trace_enabled(false);
}

/// (vertex count, edge list, weight bits, content digest) — every part of
/// a graph that "bit-identical" covers.
type Fingerprint = (usize, Vec<(u32, u32)>, Option<Vec<u64>>, u64);

fn fingerprint(g: &CsrGraph) -> Fingerprint {
    (
        g.num_vertices(),
        g.edge_slice().to_vec(),
        g.weight_slice().map(|w| w.iter().map(|x| u64::from(x.to_bits())).collect()),
        graph_digest(g),
    )
}

/// Runs a chained pipeline through the session layer (cache enabled, so
/// the StageCache counters/spans fire) and fingerprints the result.
fn session_compress(g: &Arc<CsrGraph>, spec: &str, seed: u64) -> impl PartialEq + std::fmt::Debug {
    let catalog = Arc::new(GraphCatalog::new());
    let handle = catalog.insert_arc("g", Arc::clone(g), "mem").expect("fresh name");
    let session = SgSession::with_cache(
        catalog,
        Arc::new(SchemeRegistry::with_defaults()),
        Arc::new(StageCache::with_capacity(sg_core::cache::DEFAULT_CACHE_BYTES)),
    );
    let spec = PipelineSpec::parse(spec).expect("spec parses");
    // Twice: the second run exercises the cache-hit path (probe spans +
    // hit counters), which must be just as invisible in the output.
    let first = session.run(&handle, &spec, seed).expect("run");
    let second = session.run(&handle, &spec, seed).expect("rerun");
    assert_eq!(fingerprint(&first.graph), fingerprint(&second.graph), "cache changed the result");
    (fingerprint(&first.graph), first.vertex_mapping)
}

/// Analyze-shaped numbers over a compressed graph, floats as raw bits.
fn analyze_bits(g: &CsrGraph) -> (u64, usize, Vec<u64>) {
    let pr = slimgraph::algos::pagerank::pagerank_default(g);
    (
        slimgraph::algos::tc::count_triangles(g),
        slimgraph::algos::cc::connected_components(g).num_components,
        pr.scores.iter().map(|x| x.to_bits()).collect(),
    )
}

#[test]
fn compress_and_analyze_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let g =
        Arc::new(generators::planted_triangles(&generators::barabasi_albert(700, 4, 31), 400, 32));
    let mut baseline = None;
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        for enabled in OBS_MODES {
            set_obs(enabled);
            let compressed = session_compress(&g, "spanner:k=4,lowdeg,uniform:p=0.5", 17);
            let direct = PipelineSpec::parse("spanner:k=4,lowdeg,uniform:p=0.5")
                .expect("parses")
                .build(&SchemeRegistry::with_defaults())
                .expect("builds")
                .apply(&g, 17)
                .result
                .graph;
            let result = (compressed, analyze_bits(&direct));
            match &baseline {
                None => baseline = Some(result),
                Some(b) => assert_eq!(
                    &result, b,
                    "telemetry={enabled} at {threads} threads diverged from the baseline"
                ),
            }
        }
    }
    rayon::set_num_threads(0);
    restore_obs();
}

fn spawn_daemon() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let cfg = ServeConfig { listen: "127.0.0.1:0".into(), transcript: false, ..Default::default() };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn ok(response: Json) -> Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

/// One served compress, returning the response checksum.
fn served_checksum(threads: usize, seed: u64) -> String {
    rayon::set_num_threads(threads);
    let g = generators::barabasi_albert(600, 4, 77);
    let dir = std::env::temp_dir().join(format!("slimgraph-obs-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("g-{threads}-{seed}.sgr"));
    slimgraph::store::save_sgr(&g, &path).expect("save");
    let (addr, daemon) = spawn_daemon();
    let mut client = Client::connect(&addr).expect("connect");
    ok(client
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(path.to_string_lossy().into_owned())),
        )
        .expect("load"));
    let response = ok(client
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("g"))
                .with("spec", Json::str("spanner:k=4,uniform:p=0.4"))
                .with("seed", Json::u64(seed)),
        )
        .expect("compress"));
    let checksum =
        response.get("checksum").and_then(Json::as_str).expect("checksum present").to_string();
    // The response carries no wall-clock-derived identity: the digest of a
    // re-run must match even though timings differ.
    let again = ok(client
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("g"))
                .with("spec", Json::str("spanner:k=4,uniform:p=0.4"))
                .with("seed", Json::u64(seed)),
        )
        .expect("recompress"));
    assert_eq!(again.get("checksum").and_then(Json::as_str), Some(checksum.as_str()));
    let _ = client.request(&Client::request_for("shutdown"));
    daemon.join().expect("daemon").expect("clean exit");
    rayon::set_num_threads(0);
    checksum
}

#[test]
fn served_results_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline = None;
    for threads in [1usize, 4] {
        for enabled in OBS_MODES {
            set_obs(enabled);
            let checksum = served_checksum(threads, 9);
            match &baseline {
                None => baseline = Some(checksum),
                Some(b) => assert_eq!(
                    &checksum, b,
                    "served digest drifted (telemetry={enabled}, {threads} threads)"
                ),
            }
        }
    }
    restore_obs();
}

#[test]
fn metrics_op_reports_while_disabled_metrics_stay_frozen() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    set_obs(false);
    let (addr, daemon) = spawn_daemon();
    let mut client = Client::connect(&addr).expect("connect");
    ok(client.request(&Client::request_for("ping")).expect("ping"));
    let frozen = ok(client.request(&Client::request_for("metrics")).expect("metrics"));
    let counters = |r: &Json, name: &str| {
        r.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
    };
    // Counters exist (pre-registered at bind) but recorded nothing.
    assert_eq!(counters(&frozen, "serve.requests"), Some(0), "disabled counters must not move");
    slimgraph::obs::set_metrics_enabled(true);
    ok(client.request(&Client::request_for("ping")).expect("ping again"));
    let live = ok(client.request(&Client::request_for("metrics")).expect("metrics again"));
    let requests = counters(&live, "serve.requests").expect("serve.requests present");
    assert!(requests >= 2, "enabled counters count the ping + metrics requests, got {requests}");
    // The snapshot carries the serve histograms the acceptance bar names.
    let histograms = live.get("metrics").and_then(|m| m.get("histograms")).expect("histograms");
    for name in ["serve.queue_wait_ms", "serve.service_ms"] {
        assert!(histograms.get(name).is_some(), "histogram {name} missing");
    }
    let _ = client.request(&Client::request_for("shutdown"));
    daemon.join().expect("daemon").expect("clean exit");
    restore_obs();
}

/// Parses the Chrome trace export and checks: well-formed JSON, the
/// required event fields, and that same-thread complete spans strictly
/// nest (a child's interval sits inside its enclosing span's, modulo
/// microsecond rounding).
#[test]
fn trace_export_is_well_formed_and_spans_nest() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    slimgraph::obs::trace::set_trace_enabled(true);
    slimgraph::obs::trace::reset();
    let g = Arc::new(generators::barabasi_albert(500, 4, 5));
    let _ = session_compress(&g, "spanner:k=4,lowdeg,uniform:p=0.5", 3);
    slimgraph::obs::trace::set_trace_enabled(false);

    let text = slimgraph::obs::trace::chrome_trace_json();
    let parsed = Json::parse(&text).expect("trace is valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty(), "tracing a pipeline must record spans");

    let mut by_tid: std::collections::BTreeMap<u64, Vec<(u64, u64, String)>> = Default::default();
    let mut named_threads = 0usize;
    let mut session_spans = 0usize;
    let mut stage_spans = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph field");
        match ph {
            "M" => named_threads += 1,
            "X" => {
                let name = event.get("name").and_then(Json::as_str).expect("name").to_string();
                let ts = event.get("ts").and_then(Json::as_u64).expect("ts");
                let dur = event.get("dur").and_then(Json::as_u64).expect("dur");
                let tid = event.get("tid").and_then(Json::as_u64).expect("tid");
                assert_eq!(event.get("pid").and_then(Json::as_u64), Some(1), "single process");
                if name == "session.run" {
                    session_spans += 1;
                    assert!(
                        event.get("args").and_then(|a| a.get("stages")).is_some(),
                        "session.run span carries its stage count"
                    );
                }
                if name == "session.stage" {
                    stage_spans += 1;
                }
                by_tid.entry(tid).or_default().push((ts, ts + dur, name));
            }
            other => panic!("unexpected event phase {other}"),
        }
    }
    assert!(named_threads >= 1, "thread_name metadata present");
    assert!(session_spans >= 2, "both session runs traced");
    assert!(stage_spans >= 3, "one span per executed stage");

    // Nesting: sort by (start, -end); a stack-based sweep must never see
    // a span that *partially* overlaps the enclosing one. 2 µs tolerance
    // absorbs independent duration rounding.
    const SLOP: u64 = 2;
    for (tid, spans) in &mut by_tid {
        spans.sort_by_key(|&(start, end, _)| (start, std::cmp::Reverse(end)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for &(start, end, ref name) in spans.iter() {
            while let Some(&(_, open_end)) = stack.last() {
                if start >= open_end.saturating_sub(SLOP) {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                assert!(
                    start + SLOP >= open_start && end <= open_end + SLOP,
                    "span {name} [{start},{end}] on tid {tid} partially overlaps \
                     enclosing [{open_start},{open_end}]"
                );
            }
            stack.push((start, end));
        }
    }
    restore_obs();
    slimgraph::obs::trace::reset();
}
