//! Integration tests for the analytics subsystem against real compression
//! outputs (not synthetic score vectors).

use sg_algos::{bc, pagerank, tc};
use sg_core::scheme::{Spanner, Spectral};
use sg_core::schemes::{uniform_sample, UpsilonVariant};
use sg_core::CompressionScheme;
use sg_graph::generators;
use sg_metrics::{
    compare_degree_distributions, critical_edge_preservation, hellinger, jensen_shannon,
    kl_divergence, reordered_neighbor_fraction, reordered_pair_fraction, total_variation,
};

#[test]
fn all_divergences_agree_on_direction() {
    // Every divergence must rank "mild compression" closer than "harsh".
    let g = generators::barabasi_albert(2000, 4, 1);
    let base = pagerank::pagerank_default(&g).scores;
    let mild = pagerank::pagerank_default(&uniform_sample(&g, 0.1, 2).graph).scores;
    let harsh = pagerank::pagerank_default(&uniform_sample(&g, 0.8, 3).graph).scores;
    for (name, f) in [
        ("kl", kl_divergence as fn(&[f64], &[f64]) -> f64),
        ("js", jensen_shannon),
        ("tv", total_variation),
        ("hellinger", hellinger),
    ] {
        let d_mild = f(&base, &mild);
        let d_harsh = f(&base, &harsh);
        assert!(d_mild < d_harsh, "{name}: mild {d_mild} should be < harsh {d_harsh}");
    }
}

#[test]
fn reordered_pairs_zero_for_identity_compression() {
    let g = generators::erdos_renyi(400, 1600, 4);
    let r = uniform_sample(&g, 0.0, 5); // keeps everything
    let before: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let after: Vec<f64> = tc::triangles_per_vertex(&r.graph).iter().map(|&x| x as f64).collect();
    assert_eq!(reordered_pair_fraction(&before, &after), 0.0);
    assert_eq!(reordered_neighbor_fraction(&g, &before, &after), 0.0);
}

#[test]
fn neighbor_metric_is_cheaper_proxy_for_full_metric() {
    // Both metrics must detect reordering under real compression, stay in
    // [0, 1], and be zero only for the identity. (Strict monotonicity in p
    // does not hold: at heavy compression most per-vertex triangle counts
    // collapse to 0 and ties suppress strict flips — the reason the paper
    // warns the metric should compare schemes at *equal* edge budgets.)
    let g = generators::planted_triangles(&generators::erdos_renyi(500, 1500, 6), 1000, 7);
    let base: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let r = uniform_sample(&g, 0.3, 8);
    let after: Vec<f64> = tc::triangles_per_vertex(&r.graph).iter().map(|&x| x as f64).collect();
    let full = reordered_pair_fraction(&base, &after);
    let nbr = reordered_neighbor_fraction(&g, &base, &after);
    assert!(full > 0.0 && full <= 1.0, "full metric {full}");
    assert!(nbr > 0.0 && nbr <= 1.0, "neighbor metric {nbr}");
}

#[test]
fn bc_ordering_damage_grows_with_compression() {
    let g = generators::barabasi_albert(600, 4, 9);
    let base = bc::betweenness_sampled(&g, 64, 1);
    let mild = uniform_sample(&g, 0.1, 10);
    let harsh = uniform_sample(&g, 0.7, 11);
    let f_mild = reordered_pair_fraction(&base, &bc::betweenness_sampled(&mild.graph, 64, 1));
    let f_harsh = reordered_pair_fraction(&base, &bc::betweenness_sampled(&harsh.graph, 64, 1));
    assert!(f_mild < f_harsh, "mild {f_mild} vs harsh {f_harsh}");
}

#[test]
fn degree_distribution_comparison_detects_spanner_flattening() {
    let g = generators::rmat_graph500(11, 10, 12);
    let r = Spanner { k: 32.0 }.apply(&g, 13);
    let cmp = compare_degree_distributions(&g, &r.graph);
    assert!(cmp.l1_distance > 0.0);
    assert!(cmp.support_after < cmp.support_before);
}

#[test]
fn spectral_beats_uniform_on_critical_edges_too() {
    let g = generators::barabasi_albert(1500, 5, 14);
    let spec = Spectral { p: 0.4, variant: UpsilonVariant::LogN, reweight: false }.apply(&g, 15);
    let unif = uniform_sample(&g, spec.edge_reduction(), 16);
    let root = sg_bench::densest_vertex(&g);
    let p_spec = critical_edge_preservation(&g, &spec.graph, root);
    let p_unif = critical_edge_preservation(&g, &unif.graph, root);
    // Spectral protects low-degree vertices' edges, keeping BFS structure.
    assert!(p_spec > 0.0 && p_unif > 0.0);
}
