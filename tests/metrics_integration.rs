//! Integration tests for the analytics subsystem against real compression
//! outputs (not synthetic score vectors).

use sg_algos::{bc, pagerank, tc};
use sg_core::scheme::{Spanner, Spectral};
use sg_core::schemes::{uniform_sample, UpsilonVariant};
use sg_core::CompressionScheme;
use sg_graph::generators;
use sg_metrics::{
    compare_degree_distributions, critical_edge_preservation, hellinger, jensen_shannon,
    kl_divergence, reordered_neighbor_fraction, reordered_pair_fraction, total_variation,
};

#[test]
fn all_divergences_agree_on_direction() {
    // Every divergence must rank "mild compression" closer than "harsh".
    let g = generators::barabasi_albert(2000, 4, 1);
    let base = pagerank::pagerank_default(&g).scores;
    let mild = pagerank::pagerank_default(&uniform_sample(&g, 0.1, 2).graph).scores;
    let harsh = pagerank::pagerank_default(&uniform_sample(&g, 0.8, 3).graph).scores;
    for (name, f) in [
        ("kl", kl_divergence as fn(&[f64], &[f64]) -> f64),
        ("js", jensen_shannon),
        ("tv", total_variation),
        ("hellinger", hellinger),
    ] {
        let d_mild = f(&base, &mild);
        let d_harsh = f(&base, &harsh);
        assert!(d_mild < d_harsh, "{name}: mild {d_mild} should be < harsh {d_harsh}");
    }
}

#[test]
fn reordered_pairs_zero_for_identity_compression() {
    let g = generators::erdos_renyi(400, 1600, 4);
    let r = uniform_sample(&g, 0.0, 5); // keeps everything
    let before: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let after: Vec<f64> = tc::triangles_per_vertex(&r.graph).iter().map(|&x| x as f64).collect();
    assert_eq!(reordered_pair_fraction(&before, &after), 0.0);
    assert_eq!(reordered_neighbor_fraction(&g, &before, &after), 0.0);
}

#[test]
fn neighbor_metric_is_cheaper_proxy_for_full_metric() {
    // Both metrics must detect reordering under real compression, stay in
    // [0, 1], and be zero only for the identity. (Strict monotonicity in p
    // does not hold: at heavy compression most per-vertex triangle counts
    // collapse to 0 and ties suppress strict flips — the reason the paper
    // warns the metric should compare schemes at *equal* edge budgets.)
    let g = generators::planted_triangles(&generators::erdos_renyi(500, 1500, 6), 1000, 7);
    let base: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let r = uniform_sample(&g, 0.3, 8);
    let after: Vec<f64> = tc::triangles_per_vertex(&r.graph).iter().map(|&x| x as f64).collect();
    let full = reordered_pair_fraction(&base, &after);
    let nbr = reordered_neighbor_fraction(&g, &base, &after);
    assert!(full > 0.0 && full <= 1.0, "full metric {full}");
    assert!(nbr > 0.0 && nbr <= 1.0, "neighbor metric {nbr}");
}

#[test]
fn bc_ordering_damage_grows_with_compression() {
    let g = generators::barabasi_albert(600, 4, 9);
    let base = bc::betweenness_sampled(&g, 64, 1);
    let mild = uniform_sample(&g, 0.1, 10);
    let harsh = uniform_sample(&g, 0.7, 11);
    let f_mild = reordered_pair_fraction(&base, &bc::betweenness_sampled(&mild.graph, 64, 1));
    let f_harsh = reordered_pair_fraction(&base, &bc::betweenness_sampled(&harsh.graph, 64, 1));
    assert!(f_mild < f_harsh, "mild {f_mild} vs harsh {f_harsh}");
}

#[test]
fn degree_distribution_comparison_detects_spanner_flattening() {
    let g = generators::rmat_graph500(11, 10, 12);
    let r = Spanner { k: 32.0 }.apply(&g, 13);
    let cmp = compare_degree_distributions(&g, &r.graph);
    assert!(cmp.l1_distance > 0.0);
    assert!(cmp.support_after < cmp.support_before);
}

#[test]
fn tuner_objectives_match_direct_metric_calls() {
    // The sg-tune objective layer must be a thin adapter: for every metric
    // kind, its score over a real compression result is bit-identical to
    // calling the underlying sg-metrics function directly.
    use slimgraph::tune::{MetricKind, Objective};
    let g = generators::planted_triangles(&generators::barabasi_albert(700, 4, 20), 500, 21);
    let r = uniform_sample(&g, 0.35, 22);

    let kl = Objective::new(&g, MetricKind::PagerankKl).score(&r);
    let direct_kl = kl_divergence(
        &pagerank::pagerank_default(&g).scores,
        &pagerank::pagerank_default(&r.graph).scores,
    );
    assert_eq!(kl.to_bits(), direct_kl.to_bits(), "pagerank-kl adapter");

    let flips = Objective::new(&g, MetricKind::ReorderedTc).score(&r);
    let tc0: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let tc1: Vec<f64> = tc::triangles_per_vertex(&r.graph).iter().map(|&x| x as f64).collect();
    assert_eq!(
        flips.to_bits(),
        reordered_pair_fraction(&tc0, &tc1).to_bits(),
        "reordered-tc adapter"
    );

    let l1 = Objective::new(&g, MetricKind::DegreeL1).score(&r);
    assert_eq!(
        l1.to_bits(),
        compare_degree_distributions(&g, &r.graph).l1_distance.to_bits(),
        "degree-l1 adapter"
    );

    let tri = Objective::new(&g, MetricKind::TrianglesRel).score(&r);
    let direct_tri = sg_metrics::relative_error(
        tc::count_triangles(&g) as f64,
        tc::count_triangles(&r.graph) as f64,
    );
    assert_eq!(tri.to_bits(), direct_tri.to_bits(), "triangles-rel adapter");

    let comps = Objective::new(&g, MetricKind::ComponentsRel).score(&r);
    let direct_comps = sg_metrics::relative_error(
        slimgraph::algos::cc::connected_components(&g).num_components as f64,
        slimgraph::algos::cc::connected_components(&r.graph).num_components as f64,
    );
    assert_eq!(comps.to_bits(), direct_comps.to_bits(), "components-rel adapter");
}

#[test]
fn tuner_objective_projects_vertex_removing_results() {
    // With a vertex-removing stage, the adapter's score equals the direct
    // metric over scores lifted back through the recorded vertex mapping.
    use slimgraph::tune::{MetricKind, Objective};
    use slimgraph::PipelineSpec;
    let g = generators::planted_triangles(&generators::barabasi_albert(600, 2, 23), 300, 24);
    let registry = slimgraph::SchemeRegistry::with_defaults();
    let out = PipelineSpec::parse("lowdeg,uniform:p=0.3")
        .expect("parses")
        .build(&registry)
        .expect("builds")
        .apply(&g, 25);
    let r = &out.result;
    assert!(r.vertex_mapping.is_some(), "lowdeg records a mapping");

    let kl = Objective::new(&g, MetricKind::PagerankKl).score(r);
    let projected = sg_metrics::project_scores(
        g.num_vertices(),
        r.vertex_mapping.as_deref(),
        &pagerank::pagerank_default(&r.graph).scores,
    )
    .expect("alignable");
    let direct = kl_divergence(&pagerank::pagerank_default(&g).scores, &projected);
    assert_eq!(kl.to_bits(), direct.to_bits(), "projection path matches");
    assert!(kl.is_finite());
}

#[test]
fn spectral_beats_uniform_on_critical_edges_too() {
    let g = generators::barabasi_albert(1500, 5, 14);
    let spec = Spectral { p: 0.4, variant: UpsilonVariant::LogN, reweight: false }.apply(&g, 15);
    let unif = uniform_sample(&g, spec.edge_reduction(), 16);
    let root = sg_bench::densest_vertex(&g);
    let p_spec = critical_edge_preservation(&g, &spec.graph, root);
    let p_unif = critical_edge_preservation(&g, &unif.graph, root);
    // Spectral protects low-degree vertices' edges, keeping BFS structure.
    assert!(p_spec > 0.0 && p_unif > 0.0);
}
