//! Sharded-vs-local bit-identity sweep — the determinism contract of the
//! sharded subsystem (ISSUE 10 acceptance).
//!
//! Every supported scheme class (edge, triangle — plain and both stateful
//! Edge-Once disciplines plus max-weight — and vertex) must produce a graph
//! bit-identical to the shared-memory `scheme.apply(g, seed)` at ranks ∈
//! {1, 2, 4}. CI runs the whole suite at SG_THREADS ∈ {1, 4}, closing the
//! ranks × threads matrix.

use sg_core::{SchemeParams, SchemeRegistry};
use sg_dist::{
    apply_edge_deletions, apply_vertex_removals, distributed_compress, shard_compress, ShardOutcome,
};
use sg_graph::generators;
use sg_graph::{CsrGraph, EdgeId, VertexId};

/// A graph with enough planted triangles that every TR discipline has real
/// work (overlapping triangles force the reservation protocol through
/// multiple supersteps).
fn triangle_rich() -> CsrGraph {
    generators::planted_triangles(&generators::erdos_renyi(900, 2200, 11), 1800, 12)
}

/// Every scheme with a sharded plan, with the params the sweep uses.
fn sharded_schemes() -> Vec<(&'static str, SchemeParams)> {
    let p = SchemeParams::from_pairs(&[("p", "0.6")]);
    vec![
        ("uniform", p.clone()),
        ("cut", SchemeParams::from_pairs(&[("k", "3")])),
        ("tr", p.clone()),
        ("tr-eo", p.clone()),
        ("tr-ct", p.clone()),
        ("tr-mw", p.clone()),
        ("lowdeg", SchemeParams::from_pairs(&[])),
    ]
}

#[test]
fn sharded_runs_are_bit_identical_to_local_at_every_rank_count() {
    let g = triangle_rich();
    let registry = SchemeRegistry::with_defaults();
    for (name, params) in sharded_schemes() {
        let scheme = registry.create(name, &params).expect("registered");
        let shared = scheme.apply(&g, 45);
        for ranks in [1, 2, 4] {
            let dist = distributed_compress(&g, scheme.as_ref(), ranks, 45)
                .unwrap_or_else(|e| panic!("{name} at ranks={ranks}: {e}"));
            assert_eq!(
                dist.result.graph.edge_slice(),
                shared.graph.edge_slice(),
                "{name} at ranks={ranks}: sharded edges diverge from scheme.apply"
            );
            assert_eq!(
                dist.result.graph.num_vertices(),
                shared.graph.num_vertices(),
                "{name} at ranks={ranks}"
            );
            assert_eq!(
                dist.result.vertex_mapping, shared.vertex_mapping,
                "{name} at ranks={ranks}: vertex mappings diverge"
            );
        }
    }
}

#[test]
fn sharded_runs_are_seed_sensitive_but_rank_insensitive() {
    // Changing the seed must change the result (the schemes really sample);
    // changing the rank count must not.
    let g = triangle_rich();
    let registry = SchemeRegistry::with_defaults();
    let scheme =
        registry.create("tr-eo", &SchemeParams::from_pairs(&[("p", "0.7")])).expect("registered");
    let a = distributed_compress(&g, scheme.as_ref(), 2, 1).expect("runs");
    let b = distributed_compress(&g, scheme.as_ref(), 4, 1).expect("runs");
    let c = distributed_compress(&g, scheme.as_ref(), 2, 2).expect("runs");
    assert_eq!(a.result.graph.edge_slice(), b.result.graph.edge_slice());
    assert_ne!(a.result.graph.edge_slice(), c.result.graph.edge_slice());
}

#[test]
fn rank_stats_account_for_the_whole_graph() {
    let g = triangle_rich();
    let registry = SchemeRegistry::with_defaults();
    for (name, params) in sharded_schemes() {
        let scheme = registry.create(name, &params).expect("registered");
        let dist = distributed_compress(&g, scheme.as_ref(), 4, 45).expect("runs");
        let owned_edges: usize = dist.ranks.iter().map(|r| r.owned_edges).sum();
        assert_eq!(owned_edges, g.num_edges(), "{name}: ranks must own every edge once");
        if dist.result.vertex_mapping.is_none() {
            // Edge-deleting paths: kept edges per rank sum to the result.
            let kept: usize = dist.ranks.iter().map(|r| r.kept_edges).sum();
            assert_eq!(kept, dist.result.graph.num_edges(), "{name}");
        }
        // Stateful disciplines exchange messages; stateless paths at least
        // send their gather messages.
        assert!(dist.total_messages() >= 1, "{name}");
        assert!(dist.max_supersteps() >= 1, "{name}");
    }
}

#[test]
fn federation_shards_union_to_the_local_result() {
    // The coordinator's merge contract: for every federable scheme the
    // union of per-shard outcomes applied to a replica equals scheme.apply.
    let g = triangle_rich();
    let registry = SchemeRegistry::with_defaults();
    let federable = [
        ("uniform", SchemeParams::from_pairs(&[("p", "0.6")])),
        ("cut", SchemeParams::from_pairs(&[("k", "3")])),
        ("tr", SchemeParams::from_pairs(&[("p", "0.6")])),
        ("lowdeg", SchemeParams::from_pairs(&[])),
    ];
    for (name, params) in federable {
        let scheme = registry.create(name, &params).expect("registered");
        let shared = scheme.apply(&g, 83);
        for shards in [1, 2, 4] {
            let mut edges: Vec<EdgeId> = Vec::new();
            let mut vertices: Vec<VertexId> = Vec::new();
            for shard in 0..shards {
                match shard_compress(&g, scheme.as_ref(), shard, shards, 83)
                    .unwrap_or_else(|e| panic!("{name} shard {shard}/{shards}: {e}"))
                {
                    ShardOutcome::Edges(d) => edges.extend(d),
                    ShardOutcome::Vertices(v) => vertices.extend(v),
                }
            }
            if vertices.is_empty() {
                edges.sort_unstable();
                edges.dedup();
                let merged = apply_edge_deletions(&g, &edges);
                assert_eq!(
                    merged.edge_slice(),
                    shared.graph.edge_slice(),
                    "{name} at shards={shards}"
                );
            } else {
                let (merged, mapping) = apply_vertex_removals(&g, &vertices);
                assert_eq!(merged.edge_slice(), shared.graph.edge_slice(), "{name}");
                assert_eq!(Some(mapping), shared.vertex_mapping, "{name}");
            }
        }
    }
}
