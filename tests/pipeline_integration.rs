//! Integration tests: the full generator → compressor → algorithm →
//! metric pipeline, spanning every crate.

use sg_algos::{bfs, cc, pagerank, tc};
use sg_core::schemes::{TrConfig, UpsilonVariant};
use sg_core::Scheme;
use sg_graph::generators::{self, presets};
use sg_metrics::{critical_edge_preservation, kl_divergence, reordered_pair_fraction};

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Uniform { p: 0.4 },
        Scheme::Spectral { p: 0.5, variant: UpsilonVariant::LogN, reweight: false },
        Scheme::Spectral { p: 0.5, variant: UpsilonVariant::AvgDegree, reweight: true },
        Scheme::TriangleReduction(TrConfig::plain_1(0.6)),
        Scheme::TriangleReduction(TrConfig::edge_once_1(0.6)),
        Scheme::TriangleReduction(TrConfig::count_triangles(0.6)),
        Scheme::TriangleCollapse { p: 0.3 },
        Scheme::LowDegree,
        Scheme::Spanner { k: 8.0 },
        Scheme::Summarization { epsilon: 0.05 },
    ]
}

#[test]
fn every_scheme_composes_with_every_stage2_algorithm() {
    let g = generators::planted_triangles(&generators::erdos_renyi(600, 1800, 1), 800, 2);
    for scheme in all_schemes() {
        let r = scheme.apply(&g, 3);
        // Stage 2 runs without panicking and produces sane outputs.
        let b = bfs::bfs_parallel(&r.graph, 0);
        assert!(b.reached >= 1, "{}", scheme.label());
        let c = cc::connected_components(&r.graph);
        assert!(c.num_components >= 1, "{}", scheme.label());
        let pr = pagerank::pagerank_default(&r.graph);
        if r.graph.num_vertices() > 0 {
            let total: f64 = pr.scores.iter().sum();
            assert!((total - 1.0).abs() < 1e-6, "{}", scheme.label());
        }
        let _ = tc::count_triangles(&r.graph);
    }
}

#[test]
fn kl_divergence_grows_with_compression_rate() {
    // §7.2: "the higher compression ratio is (lower m), the higher KL
    // divergence becomes" — verify the monotone trend for uniform sampling.
    let g = presets::s_you_like();
    let base = pagerank::pagerank_default(&g).scores;
    let mut last_kl = -1.0;
    for p in [0.1, 0.4, 0.8] {
        let r = Scheme::Uniform { p }.apply(&g, 5);
        let scores = pagerank::pagerank_default(&r.graph).scores;
        let kl = kl_divergence(&base, &scores);
        assert!(kl > last_kl, "KL not increasing: {kl} after {last_kl} at p={p}");
        last_kl = kl;
    }
}

#[test]
fn spanner_critical_edge_preservation_decays_with_k() {
    let g = presets::s_pok_like();
    let root = 0u32;
    let mut last = f64::INFINITY;
    for k in [2.0, 8.0, 32.0, 128.0] {
        let r = Scheme::Spanner { k }.apply(&g, 7);
        let pres = critical_edge_preservation(&g, &r.graph, root);
        assert!(pres <= last + 0.05, "preservation not decaying at k={k}");
        // A count ratio can slightly exceed 1 at small k (depths shift and
        // more surviving edges straddle consecutive frontiers).
        assert!(pres > 0.0 && pres <= 1.2);
        last = pres;
    }
}

#[test]
fn spectral_preserves_tc_ordering_better_than_uniform() {
    // The §7.2 discovery reproduced end-to-end at equal edge budget. The
    // effect needs a *skewed* degree distribution (spectral's per-edge
    // probabilities differentiate by min-degree); on near-regular graphs
    // such as Watts–Strogatz the two schemes coincide.
    let g = presets::s_pok_like();
    let base: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let spec = Scheme::Spectral { p: 0.4, variant: UpsilonVariant::LogN, reweight: false }
        .apply(&g, 11);
    let unif = Scheme::Uniform { p: spec.edge_reduction() }.apply(&g, 12);
    let tc_spec: Vec<f64> =
        tc::triangles_per_vertex(&spec.graph).iter().map(|&x| x as f64).collect();
    let tc_unif: Vec<f64> =
        tc::triangles_per_vertex(&unif.graph).iter().map(|&x| x as f64).collect();
    let flips_spec = reordered_pair_fraction(&base, &tc_spec);
    let flips_unif = reordered_pair_fraction(&base, &tc_unif);
    assert!(
        flips_spec < flips_unif,
        "spectral {flips_spec} should beat uniform {flips_unif}"
    );
}

#[test]
fn io_roundtrip_of_compressed_graph() {
    let g = generators::rmat_graph500(10, 8, 13);
    let r = Scheme::Uniform { p: 0.5 }.apply(&g, 14);
    let bytes = sg_graph::io::to_binary(&r.graph);
    let back = sg_graph::io::from_binary(&bytes).expect("roundtrip");
    assert_eq!(back.edge_slice(), r.graph.edge_slice());
    assert!(bytes.len() < sg_graph::io::to_binary(&g).len());
}

#[test]
fn compression_is_deterministic_end_to_end() {
    let g = presets::v_ewk_like();
    for scheme in all_schemes() {
        let a = scheme.apply(&g, 99);
        let b = scheme.apply(&g, 99);
        assert_eq!(
            a.graph.edge_slice(),
            b.graph.edge_slice(),
            "{} not deterministic",
            scheme.label()
        );
    }
}
