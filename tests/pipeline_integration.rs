//! Integration tests: the full generator → compressor → algorithm →
//! metric pipeline, spanning every crate. Schemes are resolved by name
//! through the [`SchemeRegistry`] — no hand-written scheme list — and
//! multi-stage [`Pipeline`]s exercise the paper's kernel-chaining model.

use sg_algos::{bfs, cc, pagerank, tc};
use sg_core::{CompressionScheme, Pipeline, SchemeParams, SchemeRegistry};
use sg_graph::generators::{self, presets};
use sg_metrics::{critical_edge_preservation, kl_divergence, reordered_pair_fraction};

/// Every registered scheme, instantiated with moderate test parameters.
fn registry_schemes() -> Vec<Box<dyn CompressionScheme>> {
    let registry = SchemeRegistry::with_defaults();
    let params = SchemeParams::from_pairs(&[("p", "0.5"), ("k", "8"), ("epsilon", "0.05")]);
    registry
        .names()
        .map(|name| registry.create(name, &params).expect("default factories succeed"))
        .collect()
}

fn uniform(p: f64) -> Box<dyn CompressionScheme> {
    SchemeRegistry::with_defaults()
        .create("uniform", &SchemeParams::from_pairs(&[("p", &p.to_string())]))
        .expect("uniform is registered")
}

#[test]
fn every_registered_scheme_composes_with_every_stage2_algorithm() {
    let g = generators::planted_triangles(&generators::erdos_renyi(600, 1800, 1), 800, 2);
    let schemes = registry_schemes();
    assert!(schemes.len() >= 9, "registry shrank to {} schemes", schemes.len());
    for scheme in &schemes {
        let r = scheme.apply(&g, 3);
        // Stage 2 runs without panicking and produces sane outputs.
        let b = bfs::bfs_parallel(&r.graph, 0);
        assert!(b.reached >= 1, "{}", scheme.label());
        let c = cc::connected_components(&r.graph);
        assert!(c.num_components >= 1, "{}", scheme.label());
        let pr = pagerank::pagerank_default(&r.graph);
        if r.graph.num_vertices() > 0 {
            let total: f64 = pr.scores.iter().sum();
            assert!((total - 1.0).abs() < 1e-6, "{}", scheme.label());
        }
        let _ = tc::count_triangles(&r.graph);
    }
}

#[test]
fn kl_divergence_grows_with_compression_rate() {
    // §7.2: "the higher compression ratio is (lower m), the higher KL
    // divergence becomes" — verify the monotone trend for uniform sampling.
    let g = presets::s_you_like();
    let base = pagerank::pagerank_default(&g).scores;
    let mut last_kl = -1.0;
    for p in [0.1, 0.4, 0.8] {
        let r = uniform(p).apply(&g, 5);
        let scores = pagerank::pagerank_default(&r.graph).scores;
        let kl = kl_divergence(&base, &scores);
        assert!(kl > last_kl, "KL not increasing: {kl} after {last_kl} at p={p}");
        last_kl = kl;
    }
}

#[test]
fn spanner_critical_edge_preservation_decays_with_k() {
    let registry = SchemeRegistry::with_defaults();
    let g = presets::s_pok_like();
    let root = 0u32;
    let mut last = f64::INFINITY;
    for k in [2.0, 8.0, 32.0, 128.0] {
        let spanner = registry
            .create("spanner", &SchemeParams::from_pairs(&[("k", &k.to_string())]))
            .expect("spanner is registered");
        let r = spanner.apply(&g, 7);
        let pres = critical_edge_preservation(&g, &r.graph, root);
        assert!(pres <= last + 0.05, "preservation not decaying at k={k}");
        // A count ratio can slightly exceed 1 at small k (depths shift and
        // more surviving edges straddle consecutive frontiers).
        assert!(pres > 0.0 && pres <= 1.2);
        last = pres;
    }
}

#[test]
fn spectral_preserves_tc_ordering_better_than_uniform() {
    // The §7.2 discovery reproduced end-to-end at equal edge budget. The
    // effect needs a *skewed* degree distribution (spectral's per-edge
    // probabilities differentiate by min-degree); on near-regular graphs
    // such as Watts–Strogatz the two schemes coincide.
    let registry = SchemeRegistry::with_defaults();
    let g = presets::s_pok_like();
    let base: Vec<f64> = tc::triangles_per_vertex(&g).iter().map(|&x| x as f64).collect();
    let spectral = registry
        .create("spectral", &SchemeParams::from_pairs(&[("p", "0.4")]))
        .expect("spectral is registered");
    let spec = spectral.apply(&g, 11);
    let unif = uniform(spec.edge_reduction()).apply(&g, 12);
    let tc_spec: Vec<f64> =
        tc::triangles_per_vertex(&spec.graph).iter().map(|&x| x as f64).collect();
    let tc_unif: Vec<f64> =
        tc::triangles_per_vertex(&unif.graph).iter().map(|&x| x as f64).collect();
    let flips_spec = reordered_pair_fraction(&base, &tc_spec);
    let flips_unif = reordered_pair_fraction(&base, &tc_unif);
    assert!(flips_spec < flips_unif, "spectral {flips_spec} should beat uniform {flips_unif}");
}

#[test]
fn io_roundtrip_of_compressed_graph() {
    let g = generators::rmat_graph500(10, 8, 13);
    let r = uniform(0.5).apply(&g, 14);
    let bytes = sg_graph::io::to_binary(&r.graph);
    let back = sg_graph::io::from_binary(&bytes).expect("roundtrip");
    assert_eq!(back.edge_slice(), r.graph.edge_slice());
    assert!(bytes.len() < sg_graph::io::to_binary(&g).len());
}

#[test]
fn compression_is_deterministic_end_to_end() {
    let g = presets::v_ewk_like();
    for scheme in registry_schemes() {
        let a = scheme.apply(&g, 99);
        let b = scheme.apply(&g, 99);
        assert_eq!(
            a.graph.edge_slice(),
            b.graph.edge_slice(),
            "{} not deterministic",
            scheme.label()
        );
    }
}

#[test]
fn chained_pipeline_runs_end_to_end_and_composes_stats() {
    // The acceptance pipeline: spanner -> lowdeg -> uniform, resolved from
    // a single spec string.
    let registry = SchemeRegistry::with_defaults();
    let base = SchemeParams::from_pairs(&[("p", "0.5")]);
    let pipeline = registry.parse_pipeline("spanner,lowdeg,uniform", &base).expect("spec parses");
    assert_eq!(pipeline.len(), 3);

    let g = presets::s_pok_like();
    let out = pipeline.apply(&g, 21);
    assert_eq!(out.stages.len(), 3);
    // Stage boundaries agree with each other and with the composed result.
    assert_eq!(out.stages[0].input_edges, g.num_edges());
    for pair in out.stages.windows(2) {
        assert_eq!(pair[0].output_edges, pair[1].input_edges);
    }
    assert_eq!(out.stages.last().expect("stages").output_edges, out.result.graph.num_edges());
    assert!(out.result.graph.num_edges() < g.num_edges());
    // lowdeg relabels vertices: the composed mapping must be present and
    // sized by the pipeline input.
    let mapping = out.result.vertex_mapping.as_ref().expect("lowdeg maps vertices");
    assert_eq!(mapping.len(), g.num_vertices());
    // Stage-2 algorithms run on the pipeline output.
    assert!(cc::connected_components(&out.result.graph).num_components >= 1);

    // Bit-identical across repeated runs with the same seed.
    let again = registry
        .parse_pipeline("spanner,lowdeg,uniform", &base)
        .expect("spec parses")
        .apply(&g, 21);
    assert_eq!(out.result.graph.edge_slice(), again.result.graph.edge_slice());
}

#[test]
fn pipeline_builder_matches_registry_spec() {
    let registry = SchemeRegistry::with_defaults();
    let params = SchemeParams::from_pairs(&[("p", "0.4"), ("k", "4")]);
    let from_spec = registry.parse_pipeline("spanner,uniform", &params).expect("parses");
    let built = Pipeline::new()
        .then(registry.create("spanner", &params).expect("spanner"))
        .then(registry.create("uniform", &params).expect("uniform"));
    let g = generators::rmat_graph500(10, 8, 31);
    assert_eq!(
        from_spec.apply(&g, 5).result.graph.edge_slice(),
        built.apply(&g, 5).result.graph.edge_slice()
    );
}
