//! Multi-daemon federation suite (the ISSUE 10 service bar): a
//! coordinator daemon plus stock worker daemons on loopback, driven over
//! real connections. Covers the happy path (merged result byte-matches a
//! local run, per-shard digests agree), lazy replica distribution, worker
//! death + ring retry, total-fleet failure, the coordinator-local
//! fallback for non-federable plans, and the split-brain digest guard.

use slimgraph::core::{PipelineSpec, SchemeRegistry};
use slimgraph::graph::generators;
use slimgraph::serve::{graph_digest, Client, FedConfig, Json, ServeConfig, Server};
use slimgraph::CsrGraph;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("slimgraph-federation-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

/// A graph with planted triangles so TR schemes have real work.
fn input_graph() -> CsrGraph {
    generators::planted_triangles(&generators::barabasi_albert(600, 4, 71), 400, 72)
}

fn cold(spec: &str, g: &CsrGraph, seed: u64) -> CsrGraph {
    PipelineSpec::parse(spec)
        .expect("spec parses")
        .build(&SchemeRegistry::with_defaults())
        .expect("spec builds")
        .apply(g, seed)
        .result
        .graph
}

type Daemon = (String, std::thread::JoinHandle<std::io::Result<()>>);

/// Binds a quiet daemon (worker or coordinator) on an ephemeral TCP port.
fn spawn(federation: Option<FedConfig>) -> Daemon {
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        federation,
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn spawn_worker() -> Daemon {
    spawn(None)
}

fn spawn_coordinator(workers: Vec<String>, retries: usize, timeout_ms: u64) -> Daemon {
    spawn(Some(FedConfig { workers, retries, timeout_ms, token: None }))
}

fn shutdown(daemons: Vec<Daemon>) {
    for (addr, handle) in daemons {
        let mut client = Client::connect(&addr).expect("connect for shutdown");
        client.request(&Client::request_for("shutdown")).expect("shutdown");
        handle.join().expect("daemon thread").expect("daemon exit");
    }
}

fn ok(response: &Json) -> &Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

fn error_code(response: &Json) -> &str {
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error code in {}", response.render()))
}

fn compress_request(graph: &str, spec: &str, seed: u64) -> Json {
    Client::request_for("compress")
        .with("graph", Json::str(graph))
        .with("spec", Json::str(spec))
        .with("seed", Json::u64(seed))
}

/// An address nothing listens on (bind an ephemeral port, then drop it).
fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = listener.local_addr().expect("probe addr").to_string();
    drop(listener);
    addr
}

#[test]
fn coordinator_federates_and_byte_matches_a_local_run() {
    let g = input_graph();
    let sgr = tmp("fed-e2e.sgr");
    slimgraph::store::save_sgr(&g, &sgr).expect("write input");

    let worker_a = spawn_worker();
    let worker_b = spawn_worker();
    let coordinator = spawn_coordinator(vec![worker_a.0.clone(), worker_b.0.clone()], 1, 5_000);
    let mut client = Client::connect(&coordinator.0).expect("connect");

    // Only the coordinator loads the graph: workers must be populated
    // lazily through the forwarded `load`.
    let load =
        Client::request_for("load").with("name", Json::str("g")).with("path", Json::str(&sgr));
    ok(&client.request(&load).expect("load"));

    // Federated compress: the merged result must byte-match a local run
    // (checksum is the FNV digest of the final graph).
    for (spec, seed) in [("uniform:p=0.5", 7u64), ("tr:p=0.6", 9), ("lowdeg", 3)] {
        let response = client.request(&compress_request("g", spec, seed)).expect("compress");
        let reference = cold(spec, &g, seed);
        assert_eq!(
            ok(&response).get("checksum").and_then(Json::as_str),
            Some(format!("{:016x}", graph_digest(&reference)).as_str()),
            "{spec}: federated digest != local Pipeline::apply digest"
        );
        assert_eq!(
            response.get("edges").and_then(Json::as_u64),
            Some(reference.num_edges() as u64),
            "{spec}"
        );
        let fed = response.get("federation").expect("federation block");
        assert_eq!(fed.get("mode").and_then(Json::as_str), Some("federated"), "{spec}");
        assert_eq!(fed.get("shards").and_then(Json::as_u64), Some(2), "{spec}");
        let workers = fed.get("workers").and_then(Json::as_arr).expect("workers array");
        assert_eq!(workers.len(), 2, "{spec}");
        let input_digest = format!("{:016x}", graph_digest(&g));
        for shard in workers {
            assert_eq!(
                shard.get("checksum").and_then(Json::as_str),
                Some(input_digest.as_str()),
                "{spec}: every shard must report the input replica's digest"
            );
            assert_eq!(shard.get("attempts").and_then(Json::as_u64), Some(1), "{spec}");
        }
    }

    // analyze rides the same path and adds the metrics block.
    let response = client
        .request(
            &Client::request_for("analyze")
                .with("graph", Json::str("g"))
                .with("spec", Json::str("uniform:p=0.5"))
                .with("seed", Json::u64(7)),
        )
        .expect("analyze");
    assert_eq!(
        ok(&response).get("federation").and_then(|f| f.get("mode")).and_then(Json::as_str),
        Some("federated")
    );
    assert!(response.get("metrics").is_some(), "analyze keeps its metrics block");

    // The `federation` status op: topology + reachability on the
    // coordinator, `standalone` on a worker.
    let status = client.request(&Client::request_for("federation")).expect("federation op");
    let fed = ok(&status).get("federation").expect("federation block");
    assert_eq!(fed.get("mode").and_then(Json::as_str), Some("coordinator"));
    for worker in fed.get("workers").and_then(Json::as_arr).expect("workers") {
        assert_eq!(worker.get("reachable").and_then(Json::as_bool), Some(true));
    }
    let mut direct = Client::connect(&worker_a.0).expect("connect worker");
    let status = direct.request(&Client::request_for("federation")).expect("worker op");
    assert_eq!(
        ok(&status).get("federation").and_then(|f| f.get("mode")).and_then(Json::as_str),
        Some("standalone")
    );

    shutdown(vec![coordinator, worker_a, worker_b]);
}

#[test]
fn dead_worker_shards_migrate_to_the_next_in_the_ring() {
    let g = input_graph();
    let sgr = tmp("fed-retry.sgr");
    slimgraph::store::save_sgr(&g, &sgr).expect("write input");

    let worker = spawn_worker();
    // Shard 0's first attempt lands on the dead address and must migrate
    // to the live worker; shard 1 starts on the live worker directly.
    let coordinator = spawn_coordinator(vec![dead_addr(), worker.0.clone()], 1, 300);
    let mut client = Client::connect(&coordinator.0).expect("connect");
    ok(&client
        .request(
            &Client::request_for("load").with("name", Json::str("g")).with("path", Json::str(&sgr)),
        )
        .expect("load"));

    let response = client.request(&compress_request("g", "uniform:p=0.4", 11)).expect("compress");
    let reference = cold("uniform:p=0.4", &g, 11);
    assert_eq!(
        ok(&response).get("checksum").and_then(Json::as_str),
        Some(format!("{:016x}", graph_digest(&reference)).as_str()),
        "retried run must still byte-match the local run"
    );
    let fed = response.get("federation").expect("federation block");
    let workers = fed.get("workers").and_then(Json::as_arr).expect("workers");
    let attempts: Vec<u64> =
        workers.iter().filter_map(|w| w.get("attempts").and_then(Json::as_u64)).collect();
    assert_eq!(attempts, vec![2, 1], "shard 0 retried once, shard 1 served first try");
    for shard in workers {
        assert_eq!(
            shard.get("addr").and_then(Json::as_str),
            Some(worker.0.as_str()),
            "both shards ended up on the live worker"
        );
    }

    shutdown(vec![coordinator, worker]);
}

#[test]
fn exhausted_retries_fail_with_a_stable_code() {
    let g = input_graph();
    let sgr = tmp("fed-dead.sgr");
    slimgraph::store::save_sgr(&g, &sgr).expect("write input");

    let coordinator = spawn_coordinator(vec![dead_addr()], 0, 200);
    let mut client = Client::connect(&coordinator.0).expect("connect");
    ok(&client
        .request(
            &Client::request_for("load").with("name", Json::str("g")).with("path", Json::str(&sgr)),
        )
        .expect("load"));

    let response = client.request(&compress_request("g", "uniform:p=0.4", 11)).expect("request");
    assert_eq!(error_code(&response), "fed-shard-failed");

    shutdown(vec![coordinator]);
}

#[test]
fn non_federable_plans_fall_back_to_the_coordinator() {
    let g = input_graph();
    let sgr = tmp("fed-local.sgr");
    slimgraph::store::save_sgr(&g, &sgr).expect("write input");

    let worker = spawn_worker();
    let coordinator = spawn_coordinator(vec![worker.0.clone()], 1, 5_000);
    let mut client = Client::connect(&coordinator.0).expect("connect");
    ok(&client
        .request(
            &Client::request_for("load").with("name", Json::str("g")).with("path", Json::str(&sgr)),
        )
        .expect("load"));

    // Edge-Once disciplines need the cross-shard flag exchange;
    // multi-stage chains need intermediate graphs. Both run locally —
    // with the correct result and an explanatory federation block.
    for spec in ["tr-eo:p=0.6", "spanner:k=4,lowdeg"] {
        let response = client.request(&compress_request("g", spec, 5)).expect("compress");
        let reference = cold(spec, &g, 5);
        assert_eq!(
            ok(&response).get("checksum").and_then(Json::as_str),
            Some(format!("{:016x}", graph_digest(&reference)).as_str()),
            "{spec}"
        );
        let fed = response.get("federation").expect("federation block");
        assert_eq!(fed.get("mode").and_then(Json::as_str), Some("local"), "{spec}");
        assert!(
            fed.get("reason").and_then(Json::as_str).is_some_and(|r| !r.is_empty()),
            "{spec}: fallback must say why"
        );
    }

    shutdown(vec![coordinator, worker]);
}

#[test]
fn replica_digest_mismatch_aborts_the_merge() {
    let g = input_graph();
    let sgr = tmp("fed-split.sgr");
    slimgraph::store::save_sgr(&g, &sgr).expect("write input");
    // A different graph the worker will hold under the same name.
    let other = generators::erdos_renyi(300, 900, 5);
    let other_sgr = tmp("fed-split-other.sgr");
    slimgraph::store::save_sgr(&other, &other_sgr).expect("write other");

    let worker = spawn_worker();
    let mut direct = Client::connect(&worker.0).expect("connect worker");
    ok(&direct
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(&other_sgr)),
        )
        .expect("poison worker"));

    let coordinator = spawn_coordinator(vec![worker.0.clone()], 1, 5_000);
    let mut client = Client::connect(&coordinator.0).expect("connect");
    ok(&client
        .request(
            &Client::request_for("load").with("name", Json::str("g")).with("path", Json::str(&sgr)),
        )
        .expect("load"));

    let response = client.request(&compress_request("g", "uniform:p=0.4", 11)).expect("request");
    assert_eq!(error_code(&response), "fed-digest-mismatch");

    shutdown(vec![coordinator, worker]);
}
