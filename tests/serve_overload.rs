//! Overload suite (ISSUE 7): more clients than workers. The bounded
//! pool must keep the thread count fixed, answer `busy` (with
//! `retry_after_ms`) once the queue is full, give every accepted
//! request exactly one response, and leave the daemon in a consistent
//! state after the storm.

use slimgraph::core::{PipelineSpec, SchemeRegistry};
use slimgraph::graph::generators;
use slimgraph::serve::{graph_digest, Client, Json, ServeConfig, Server};
use std::time::Duration;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("slimgraph-serve-overload-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

fn spawn(cfg: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn ok(response: &Json) -> &Json {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        response.render()
    );
    response
}

fn error_code(response: &Json) -> String {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_default()
}

/// Deterministic saturation: 2 workers pinned by live connections,
/// 2 more queued, the 5th rejected with `busy` + `retry_after_ms`.
#[test]
fn saturated_pool_answers_busy_with_retry_hint() {
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        workers: 2,
        queue_depth: 2,
        retry_after_ms: 150,
        ..Default::default()
    };
    let (addr, daemon) = spawn(cfg);

    // A worker stays with its connection until it closes, so one ping
    // round-trip per connection proves both workers are pinned.
    let mut pin_a = Client::connect(&addr).expect("connect");
    let mut pin_b = Client::connect(&addr).expect("connect");
    ok(&pin_a.request(&Client::request_for("ping")).expect("pin a"));
    ok(&pin_b.request(&Client::request_for("ping")).expect("pin b"));

    // These two can only sit in the queue (both workers are taken).
    let mut queued_a = Client::connect(&addr).expect("connect");
    let mut queued_b = Client::connect(&addr).expect("connect");
    // Give the acceptor time to enqueue them before overflowing.
    std::thread::sleep(Duration::from_millis(300));

    // Queue full → admission control turns us away with a retry hint.
    let mut rejected = Client::connect(&addr).expect("connect");
    let response = rejected.request(&Client::request_for("ping")).expect("busy line");
    assert_eq!(error_code(&response), "busy", "{}", response.render());
    assert_eq!(
        response.get("error").and_then(|e| e.get("retry_after_ms")).and_then(Json::as_u64),
        Some(150),
        "busy must carry retry_after_ms: {}",
        response.render()
    );

    // Freeing the workers drains the queue: the clients that waited are
    // served, none dropped.
    drop(pin_a);
    drop(pin_b);
    ok(&queued_a.request(&Client::request_for("ping")).expect("queued a served"));
    ok(&queued_b.request(&Client::request_for("ping")).expect("queued b served"));

    let stats = queued_a.request(&Client::request_for("stats")).expect("stats");
    let server = ok(&stats).get("server").expect("server stats");
    assert_eq!(server.get("workers").and_then(Json::as_u64), Some(2));
    assert!(
        server.get("busy_rejected").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "rejection counted: {}",
        stats.render()
    );
    // Bounded thread count: at no point did more conns run than workers.
    assert!(
        server.get("peak_active").and_then(Json::as_u64).unwrap_or(u64::MAX) <= 2,
        "peak_active bounded by workers: {}",
        stats.render()
    );

    ok(&queued_a.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}

/// Connection storm: 12 concurrent clients against 2 workers. Every
/// client gets exactly one response — `pong` or `busy` — nothing is
/// dropped, and the daemon computes bit-identically afterward.
#[test]
fn storm_drops_nothing_and_state_stays_consistent() {
    let g = generators::planted_triangles(&generators::barabasi_albert(300, 4, 91), 200, 92);
    let path = tmp("storm.sgr");
    slimgraph::store::save_sgr(&g, &path).expect("save input");
    let spec = "spanner:k=4,uniform:p=0.5";
    let reference = {
        let pipeline = PipelineSpec::parse(spec)
            .expect("spec")
            .build(&SchemeRegistry::with_defaults())
            .expect("builds");
        format!("{:016x}", graph_digest(&pipeline.apply(&g, 9).result.graph))
    };

    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        transcript: false,
        workers: 2,
        queue_depth: 2,
        ..Default::default()
    };
    let (addr, daemon) = spawn(cfg);
    let mut keeper = Client::connect(&addr).expect("connect");
    ok(&keeper
        .request(
            &Client::request_for("load")
                .with("name", Json::str("g"))
                .with("path", Json::str(&path)),
        )
        .expect("load"));
    drop(keeper); // free the worker for the storm

    const CLIENTS: usize = 12;
    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let response =
                        client.request(&Client::request_for("ping")).expect("one response");
                    if response.get("pong").and_then(Json::as_bool) == Some(true) {
                        "pong".to_string()
                    } else {
                        error_code(&response)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let pongs = outcomes.iter().filter(|o| *o == "pong").count();
    let busy = outcomes.iter().filter(|o| *o == "busy").count();
    assert_eq!(
        pongs + busy,
        CLIENTS,
        "every client gets exactly one pong-or-busy response: {outcomes:?}"
    );
    assert!(pongs >= 1, "storm must not starve everyone: {outcomes:?}");

    // After the storm: bounded concurrency, and results still byte-match
    // a cold direct run.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.request(&Client::request_for("stats")).expect("stats");
    let server = ok(&stats).get("server").expect("server stats");
    assert!(
        server.get("peak_active").and_then(Json::as_u64).unwrap_or(u64::MAX) <= 2,
        "thread count stayed bounded: {}",
        stats.render()
    );
    assert!(
        server.get("admitted").and_then(Json::as_u64).unwrap_or(0) as usize >= pongs,
        "admissions counted: {}",
        stats.render()
    );
    let response = client
        .request(
            &Client::request_for("compress")
                .with("graph", Json::str("g"))
                .with("spec", Json::str(spec))
                .with("seed", Json::u64(9)),
        )
        .expect("compress");
    assert_eq!(
        ok(&response).get("checksum").and_then(Json::as_str),
        Some(reference.as_str()),
        "post-storm output must byte-match the direct run"
    );
    ok(&client.request(&Client::request_for("shutdown")).expect("shutdown"));
    daemon.join().expect("daemon thread").expect("clean exit");
}
